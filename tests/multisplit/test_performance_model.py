"""Qualitative reproduction tests: the paper's performance claims must
hold in the cost model (who wins, where, and why)."""

import numpy as np
import pytest

from repro.multisplit import multisplit, RangeBuckets
from repro.simt import Device, K40C, GTX750TI
from repro.sort import radix_sort
from repro.workloads import uniform_keys, binomial_keys, random_values

N = 1 << 19


def run(method, m, kv=False, spec=K40C, n=N, keys=None, seed=0):
    rng = np.random.default_rng(seed)
    if keys is None:
        keys = uniform_keys(n, m, rng)
    values = random_values(keys.size, rng) if kv else None
    return multisplit(keys, RangeBuckets(m), values=values, method=method,
                      device=Device(spec))


def radix_ms(kv=False, spec=K40C, n=N, seed=0):
    rng = np.random.default_rng(seed)
    keys = uniform_keys(n, 2, rng)
    values = random_values(n, rng) if kv else None
    dev = Device(spec)
    radix_sort(dev, keys, values)
    return dev.total_ms


class TestHeadlineClaims:
    """Abstract: 3.0-6.7x over radix sort key-only, 4.4-8.0x key-value."""

    @pytest.mark.parametrize("m", [2, 8, 32])
    def test_beats_radix_sort_key_only(self, m):
        base = radix_ms(kv=False)
        for method in ("direct", "warp", "block"):
            speedup = base / run(method, m).simulated_ms
            assert 2.0 < speedup < 9.0, (method, m, speedup)

    @pytest.mark.parametrize("m", [2, 8, 32])
    def test_beats_radix_sort_key_value(self, m):
        base = radix_ms(kv=True)
        for method in ("direct", "warp", "block"):
            speedup = base / run(method, m, kv=True).simulated_ms
            assert 2.0 < speedup < 10.0, (method, m, speedup)

    def test_warp_level_peak_at_two_buckets(self):
        """Warp-level MS has the highest throughput of all methods at m=2."""
        others = ["direct", "block", "scan_split", "reduced_bit"]
        warp = run("warp", 2).simulated_ms
        for method in others:
            assert warp < run(method, 2).simulated_ms, method


class TestFigure3Crossovers:
    def test_warp_best_small_m(self):
        assert run("warp", 2).simulated_ms < run("block", 2).simulated_ms

    def test_block_best_large_m(self):
        assert run("block", 32).simulated_ms < run("warp", 32).simulated_ms
        assert run("block", 32).simulated_ms < run("direct", 32).simulated_ms

    def test_block_flattest_in_m(self):
        """Block-level MS grows least from m=2 to m=32 (smallest scan)."""
        growth = {}
        for method in ("direct", "warp", "block"):
            growth[method] = run(method, 32).simulated_ms / run(method, 2).simulated_ms
        assert growth["block"] < growth["direct"]
        assert growth["block"] < growth["warp"]

    def test_scan_stage_shrinks_by_nw(self):
        """Block-level's global scan is ~NW times cheaper (Table 1)."""
        direct = run("direct", 32).stage_ms("scan")
        block = run("block", 32).stage_ms("scan")
        assert block < direct / 3


class TestReorderingEffects:
    def test_warp_reorder_helps_at_small_m(self):
        d = run("direct", 2)
        w = run("warp", 2)
        assert w.stage_ms("postscan") < d.stage_ms("postscan")

    def test_warp_reorder_reduces_issue_runs(self):
        d = run("direct", 4)
        w = run("warp", 4)
        runs_d = sum(r.counters.global_issue_runs for r in d.timeline.records)
        runs_w = sum(r.counters.global_issue_runs for r in w.timeline.records)
        assert runs_w < runs_d / 2

    def test_same_write_sectors_direct_vs_warp(self):
        """Intra-warp reordering cannot change the sector *set* per warp."""
        d = run("direct", 8)
        w = run("warp", 8)
        sec_d = d.timeline.records[-1].counters.global_write_sectors
        sec_w = w.timeline.records[-1].counters.global_write_sectors
        assert sec_w == pytest.approx(sec_d, rel=0.01)

    def test_block_reorder_reduces_write_sectors(self):
        d = run("direct", 32)
        b = run("block", 32)
        sec_d = d.timeline.records[-1].counters.global_write_sectors
        sec_b = b.timeline.records[-1].counters.global_write_sectors
        assert sec_b < sec_d / 2


class TestDistributionEffects:
    """Figure 5: non-uniform distributions run faster than uniform."""

    @pytest.mark.parametrize("method", ["block", "reduced_bit"])
    def test_binomial_faster_than_uniform(self, method):
        m = 16
        rng = np.random.default_rng(0)
        t_uni = run(method, m, keys=uniform_keys(N, m, rng)).simulated_ms
        t_bin = run(method, m, keys=binomial_keys(N, m, 0.5, rng)).simulated_ms
        assert t_bin < t_uni

    def test_single_bucket_spike_fastest(self):
        m = 16
        spike = np.full(N, 7 * (2**32 // 16) + 5, dtype=np.uint32)
        t_spike = run("block", m, keys=spike).simulated_ms
        rng = np.random.default_rng(1)
        t_uni = run("block", m, keys=uniform_keys(N, m, rng)).simulated_ms
        assert t_spike < t_uni


class TestMicroarchitectures:
    """Section 6.3: reordering pays off more on Maxwell."""

    def test_maxwell_slower_absolute(self):
        assert run("warp", 8, spec=GTX750TI).simulated_ms > run("warp", 8).simulated_ms

    def test_reordering_relatively_better_on_maxwell(self):
        adv_kepler = (run("direct", 2).simulated_ms /
                      run("warp", 2).simulated_ms)
        adv_maxwell = (run("direct", 2, spec=GTX750TI).simulated_ms /
                       run("warp", 2, spec=GTX750TI).simulated_ms)
        assert adv_maxwell > adv_kepler


class TestLargeBucketCounts:
    """Figure 4: block-level degrades with m; reduced-bit scales ~log m."""

    def test_block_grows_superlinearly_past_warp_width(self):
        t64 = run("block", 64, n=1 << 17).simulated_ms
        t512 = run("block", 512, n=1 << 17).simulated_ms
        assert t512 > 2 * t64

    def test_reduced_bit_steps_with_log_m(self):
        t64 = run("reduced_bit", 64, n=1 << 17).simulated_ms
        t256 = run("reduced_bit", 256, n=1 << 17).simulated_ms  # still 1 pass
        t1024 = run("reduced_bit", 1024, n=1 << 17).simulated_ms  # 2 passes
        assert t256 < 1.5 * t64
        assert t1024 > 1.25 * t256

    def test_reduced_bit_beats_block_at_huge_m(self):
        n = 1 << 17
        assert (run("reduced_bit", 2048, n=n).simulated_ms
                < run("block", 2048, n=n).simulated_ms)

    def test_block_occupancy_degrades_with_m(self):
        res = run("block", 2048, n=1 << 17)
        post = [r for r in res.timeline.records if r.stage == "postscan"][0]
        assert post.time.occupancy < 0.5


class TestRandomizedTradeoff:
    """Section 3.5: contention vs memory; ~2x slower than radix sort at
    the paper's best setting (x = 2)."""

    def test_about_2x_slower_than_radix(self):
        t = run_randomized(2.0)
        ratio = t / radix_ms(n=1 << 17, seed=3)
        assert 1.3 < ratio < 3.5
        # and far slower than the proposed deterministic methods
        assert t > 3 * run("warp", 8, n=1 << 17).simulated_ms

    def test_relaxation_tradeoff(self):
        """Small x drowns in collisions; the curve flattens past x~2-3."""
        times = {x: run_randomized(x) for x in (1.05, 2.0, 3.0, 8.0)}
        assert times[2.0] < times[1.05] / 2
        assert times[3.0] < times[1.05]
        # past the sweet spot the extra memory keeps it from improving much
        assert times[8.0] > times[3.0] * 0.8


def run_randomized(relaxation):
    rng = np.random.default_rng(3)
    keys = uniform_keys(1 << 17, 8, rng)
    res = multisplit(keys, RangeBuckets(8), method="randomized",
                     relaxation=relaxation, device=Device(K40C))
    return res.simulated_ms
