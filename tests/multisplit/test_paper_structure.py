"""Structural fidelity tests for the paper's Tables 1 and 2.

Table 1 gives the size of the global operation per granularity
(``m x L`` with L = warps, or blocks); Table 2 itemizes which stages
read/write what. These tests pin our implementations to that structure
through the audited counters, independent of any timing.
"""

import numpy as np

from repro.multisplit import multisplit, RangeBuckets
from repro.simt import Device, K40C

N = 1 << 16
M = 8
NW = 8


def run(method, kv=False, **kw):
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 2**32, N, dtype=np.uint32)
    values = rng.integers(0, 2**32, N, dtype=np.uint32) if kv else None
    dev = Device(K40C)
    multisplit(keys, RangeBuckets(M), values=values, method=method, device=dev,
               warps_per_block=NW, **kw)
    return {r.name: r.counters for r in dev.timeline.records}


class TestTable1GlobalOperationSize:
    """H is m x L; L = warps for Direct/Warp MS, blocks for Block MS."""

    def _h_write_bytes(self, counters, kernel_sub):
        pre = next(c for name, c in counters.items() if kernel_sub in name)
        # pre-scan reads n keys and writes exactly H
        return pre.global_write_bytes_useful

    def test_direct_h_is_m_by_warps(self):
        counters = run("direct")
        warps = N // 32
        assert self._h_write_bytes(counters, "warp_histogram") == M * warps * 4

    def test_block_h_is_m_by_blocks(self):
        counters = run("block")
        blocks = N // (32 * NW)
        assert self._h_write_bytes(counters, "block_histogram") == M * blocks * 4

    def test_block_scan_is_nw_times_smaller(self):
        d = run("direct")
        b = run("block")
        scan_d = next(c for n_, c in d.items() if "device_scan" in n_)
        scan_b = next(c for n_, c in b.items() if "device_scan" in n_)
        assert scan_d.global_read_bytes_useful > \
            NW * 0.9 * scan_b.global_read_bytes_useful

    def test_coarsening_shrinks_h(self):
        c1 = run("direct", items_per_lane=1)
        c4 = run("direct", items_per_lane=4)
        h1 = self._h_write_bytes(c1, "warp_histogram")
        h4 = self._h_write_bytes(c4, "warp_histogram")
        assert h1 == 4 * h4


class TestTable2StageTraffic:
    """Post-scan reads keys (+values) and global offsets: 2n + mL."""

    def test_direct_postscan_reads(self):
        counters = run("direct")
        post = next(c for name, c in counters.items() if "scatter" in name)
        warps = N // 32
        assert post.global_read_bytes_useful == N * 4 + M * warps * 4

    def test_direct_postscan_reads_kv(self):
        counters = run("direct", kv=True)
        post = next(c for name, c in counters.items() if "scatter" in name)
        warps = N // 32
        assert post.global_read_bytes_useful == 2 * N * 4 + M * warps * 4

    def test_prescan_reads_only_keys(self):
        """Table 2: pre-scan reads keys only (n), even for key-value runs
        — the motivation for post-scan (not pre-scan) reordering."""
        for method in ("direct", "warp", "block"):
            counters = run(method, kv=True)
            pre = next(c for name, c in counters.items()
                       if "histogram" in name and "device" not in name)
            assert pre.global_read_bytes_useful == N * 4, method

    def test_all_methods_write_n_elements_out(self):
        for method, kv in (("direct", False), ("warp", True), ("block", True)):
            counters = run(method, kv=kv)
            post = next(c for name, c in counters.items()
                        if "scatter" in name)
            expect = N * 4 * (2 if kv else 1)
            assert post.global_write_bytes_useful == expect, method

    def test_recompute_not_store(self):
        """Footnote 6: bucket ids are recomputed, never stored — the
        pre-scan of Direct MS writes exactly H and nothing else."""
        counters = run("direct")
        pre = next(c for name, c in counters.items() if "warp_histogram" in name)
        warps = N // 32
        assert pre.global_write_bytes_useful == M * warps * 4
