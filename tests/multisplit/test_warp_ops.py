"""Tests for the paper's Algorithms 2 & 3 (warp histogram / local offsets)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simt import WarpGang, KernelCounters
from repro.multisplit.warp_ops import (
    warp_histogram,
    warp_offsets,
    warp_histogram_and_offsets,
    _bitmap_paths,
    _arithmetic_paths,
)


def oracle_histogram(bucket_id, m, valid=None):
    W = bucket_id.shape[0]
    out = np.zeros((W, m), dtype=np.int64)
    for w in range(W):
        for lane in range(32):
            if valid is None or valid[w, lane]:
                out[w, bucket_id[w, lane]] += 1
    return out


def oracle_offsets(bucket_id, m, valid=None):
    W = bucket_id.shape[0]
    out = np.zeros((W, 32), dtype=np.int64)
    for w in range(W):
        seen = {}
        for lane in range(32):
            if valid is None or valid[w, lane]:
                b = bucket_id[w, lane]
                out[w, lane] = seen.get(b, 0)
                seen[b] = seen.get(b, 0) + 1
    return out


def rand_ids(W, m, seed=0):
    return np.random.default_rng(seed).integers(0, m, size=(W, 32)).astype(np.uint32)


class TestWarpHistogram:
    @pytest.mark.parametrize("m", [1, 2, 3, 5, 8, 16, 31, 32])
    def test_matches_oracle(self, m):
        ids = rand_ids(6, m, seed=m)
        gang = WarpGang(6, KernelCounters())
        assert (warp_histogram(gang, ids, m) == oracle_histogram(ids, m)).all()

    def test_all_same_bucket(self):
        ids = np.full((2, 32), 3, dtype=np.uint32)
        gang = WarpGang(2)
        hist = warp_histogram(gang, ids, 8)
        assert (hist[:, 3] == 32).all()
        assert hist.sum() == 64

    def test_with_valid_mask(self):
        ids = rand_ids(4, 8, seed=1)
        valid = np.random.default_rng(2).random((4, 32)) < 0.5
        gang = WarpGang(4)
        assert (warp_histogram(gang, ids, 8, valid) == oracle_histogram(ids, 8, valid)).all()

    def test_histogram_sums_to_valid_count(self):
        ids = rand_ids(4, 16, seed=3)
        valid = np.random.default_rng(4).random((4, 32)) < 0.7
        gang = WarpGang(4)
        hist = warp_histogram(gang, ids, 16, valid)
        assert (hist.sum(axis=1) == valid.sum(axis=1)).all()

    def test_shape_validated(self):
        gang = WarpGang(2)
        with pytest.raises(ValueError):
            warp_histogram(gang, np.zeros((3, 32), dtype=np.uint32), 4)
        with pytest.raises(ValueError):
            warp_histogram(gang, np.zeros((2, 32), dtype=np.uint32), 0)


class TestWarpOffsets:
    @pytest.mark.parametrize("m", [1, 2, 4, 7, 32])
    def test_matches_oracle(self, m):
        ids = rand_ids(5, m, seed=10 + m)
        gang = WarpGang(5)
        assert (warp_offsets(gang, ids, m) == oracle_offsets(ids, m)).all()

    def test_first_of_bucket_gets_zero(self):
        """Regression for the paper's Algorithm 3 off-by-one: offsets are
        exclusive (rank among strictly preceding same-bucket lanes)."""
        ids = np.zeros((1, 32), dtype=np.uint32)
        gang = WarpGang(1)
        off = warp_offsets(gang, ids, 2)
        assert off[0].tolist() == list(range(32))

    def test_offsets_unique_within_bucket(self):
        ids = rand_ids(8, 4, seed=5)
        gang = WarpGang(8)
        off = warp_offsets(gang, ids, 4)
        for w in range(8):
            for b in range(4):
                sel = off[w][ids[w] == b]
                assert sorted(sel.tolist()) == list(range(len(sel)))

    def test_with_valid_mask(self):
        ids = rand_ids(4, 8, seed=6)
        valid = np.random.default_rng(7).random((4, 32)) < 0.4
        gang = WarpGang(4)
        off = warp_offsets(gang, ids, 8, valid)
        assert (off == oracle_offsets(ids, 8, valid)).all()


class TestMergedAndConsistency:
    def test_merged_equals_separate(self):
        ids = rand_ids(4, 16, seed=8)
        g1, g2, g3 = WarpGang(4), WarpGang(4), WarpGang(4)
        hist, off = warp_histogram_and_offsets(g1, ids, 16)
        assert (hist == warp_histogram(g2, ids, 16)).all()
        assert (off == warp_offsets(g3, ids, 16)).all()

    def test_merged_shares_ballots(self):
        ids = rand_ids(4, 16, seed=9)
        c_merged = KernelCounters()
        warp_histogram_and_offsets(WarpGang(4, c_merged), ids, 16)
        c_h, c_o = KernelCounters(), KernelCounters()
        warp_histogram(WarpGang(4, c_h), ids, 16)
        warp_offsets(WarpGang(4, c_o), ids, 16)
        assert c_merged.warp_instructions < c_h.warp_instructions + c_o.warp_instructions

    def test_instruction_count_scales_with_log_m(self):
        ids2 = rand_ids(16, 2, seed=11)
        ids32 = rand_ids(16, 32, seed=12)
        c2, c32 = KernelCounters(), KernelCounters()
        warp_histogram(WarpGang(16, c2), ids2, 2)
        warp_histogram(WarpGang(16, c32), ids32, 32)
        assert c32.warp_instructions > 2 * c2.warp_instructions

    @pytest.mark.parametrize("m", [33, 64, 100, 1000])
    def test_arithmetic_path_matches_oracle(self, m):
        ids = rand_ids(4, m, seed=m)
        gang = WarpGang(4)
        hist, off = warp_histogram_and_offsets(gang, ids, m)
        assert (hist == oracle_histogram(ids, m)).all()
        assert (off == oracle_offsets(ids, m)).all()

    def test_bitmap_and_arithmetic_agree(self):
        """The fast path used for m > 32 must be bit-identical to the
        literal ballot algorithm on the overlap domain (m <= 32)."""
        for m in (2, 5, 17, 32):
            ids = rand_ids(8, m, seed=m + 40)
            valid = np.random.default_rng(m).random((8, 32)) < 0.8
            h1, o1 = _bitmap_paths(WarpGang(8), ids, m, valid, True, True)
            h2, o2 = _arithmetic_paths(WarpGang(8), ids, m, valid, True, True)
            assert (h1 == h2).all() and (o1 == o2).all()

    def test_large_m_charges_scaled_groups(self):
        ids64 = rand_ids(16, 64, seed=50)
        ids33 = rand_ids(16, 33, seed=51)
        c64, c33 = KernelCounters(), KernelCounters()
        warp_histogram(WarpGang(16, c64), ids64, 64)
        warp_histogram(WarpGang(16, c33), ids33, 33)
        assert c64.warp_instructions == c33.warp_instructions  # both 2 groups, 6 rounds

    @given(st.integers(1, 32), st.integers(0, 2**32 - 1))
    @settings(max_examples=40)
    def test_property_histogram_offsets_consistent(self, m, seed):
        ids = rand_ids(3, m, seed=seed)
        gang = WarpGang(3)
        hist, off = warp_histogram_and_offsets(gang, ids, m)
        # max offset within a bucket == count - 1
        for w in range(3):
            for b in range(m):
                cnt = int(hist[w, b])
                if cnt:
                    assert int(off[w][ids[w] == b].max()) == cnt - 1
