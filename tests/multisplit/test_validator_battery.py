"""The input-validator battery and its three satellite bugfixes.

``validate_spec`` / ``multisplit(strict=True)`` must catch hostile or
buggy specs (out-of-range, wrapped, lying ``elementwise``,
non-deterministic) before they corrupt shared state, on all four
engines; degenerate-but-legal inputs (empty, m=1, everything in one
bucket, empty buckets) must keep working everywhere. The regression
tests at the bottom pin the negative-key ``DeltaBuckets`` /
``PrimeCompositeBuckets`` fixes and the ``check_multisplit`` kv-pairing
dtype fix — each failed before its fix.
"""

import numpy as np
import pytest

from repro.engine import Workspace, sharded_multisplit, stream_multisplit
from repro.multisplit import (
    BucketSpec,
    CustomBuckets,
    DeltaBuckets,
    IdentityBuckets,
    PrimeCompositeBuckets,
    RangeBuckets,
    SplitterBuckets,
    SpecValidationError,
    check_multisplit,
    multisplit,
    validate_spec,
)
from repro.multisplit.result import MultisplitResult
from repro.multisplit.validate import MultisplitValidationError

ENGINES = ("emulate", "fast", "sharded", "stream")


def _keys(n=2048, seed=0):
    return np.random.default_rng(seed).integers(0, 1 << 20, n,
                                                dtype=np.uint32)


class _RawSpec(BucketSpec):
    """A spec with NO self-validation — what a hostile/buggy third-party
    subclass looks like (CustomBuckets guards its own ids, so malice has
    to come in as a raw BucketSpec)."""

    elementwise = True

    def __init__(self, fn, m):
        super().__init__(m)
        self._fn = fn

    def ids(self, keys):
        return self._fn(np.asarray(keys))


class _LyingElementwise(CustomBuckets):
    """Claims elementwise=True but ids depend on array position."""

    def __init__(self, m=4):
        super().__init__(lambda k: np.arange(np.asarray(k).size,
                                             dtype=np.uint32) % m,
                         m, elementwise=True)


class _NonDeterministic(CustomBuckets):
    def __init__(self, m=4):
        self.calls = 0

        def fn(k):
            self.calls += 1
            return np.full(np.asarray(k).size, self.calls % m,
                           dtype=np.uint32)

        super().__init__(fn, m, elementwise=True)


class TestValidateSpec:
    def test_good_specs_pass(self):
        keys = _keys()
        for spec in (RangeBuckets(8, 0, 1 << 20), IdentityBuckets(1 << 20),
                     DeltaBuckets(1000.0, 16),
                     SplitterBuckets(np.array([100, 10_000], dtype=np.uint32)),
                     CustomBuckets(lambda k: np.asarray(k) % 5, 5,
                                   elementwise=True)):
            validate_spec(spec, keys)

    def test_out_of_range_ids(self):
        spec = _RawSpec(lambda k: np.full(k.size, 4, dtype=np.uint32), 4)
        with pytest.raises(SpecValidationError, match="out-of-range|outside"):
            validate_spec(spec, _keys())

    def test_negative_ids(self):
        spec = _RawSpec(lambda k: np.full(k.size, -1, dtype=np.int64), 4)
        with pytest.raises(SpecValidationError, match="outside"):
            validate_spec(spec, _keys())

    def test_wrapped_ids_via_eval_into(self):
        """A spec whose arena path disagrees with ids() is caught."""

        class Wrapping(CustomBuckets):
            def __init__(self):
                super().__init__(lambda k: np.asarray(k) % 4, 4,
                                 elementwise=True)

            def eval_into(self, keys, out, arena=None):
                if arena is None:
                    return super().eval_into(keys, out)
                out[...] = (np.asarray(keys) % 4 + 1) % 4  # wrapped

        with pytest.raises(SpecValidationError, match="eval_into"):
            validate_spec(Wrapping(), _keys())

    def test_lying_elementwise(self):
        with pytest.raises(SpecValidationError, match="elementwise"):
            validate_spec(_LyingElementwise(), _keys())

    def test_non_deterministic(self):
        with pytest.raises(SpecValidationError):
            validate_spec(_NonDeterministic(), _keys())

    def test_non_integer_ids(self):
        spec = _RawSpec(lambda k: np.asarray(k, dtype=np.float64) % 4, 4)
        with pytest.raises(SpecValidationError, match="non-integer"):
            validate_spec(spec, _keys())

    def test_wrong_shape_ids(self):
        spec = _RawSpec(lambda k: np.zeros(3, dtype=np.uint32), 4)
        with pytest.raises(SpecValidationError, match="shape"):
            validate_spec(spec, _keys())

    def test_non_spec_rejected(self):
        with pytest.raises(TypeError, match="BucketSpec"):
            validate_spec(lambda k: k % 4, _keys())

    def test_2d_keys_rejected(self):
        with pytest.raises(SpecValidationError, match="1-D"):
            validate_spec(RangeBuckets(4), _keys().reshape(-1, 2))

    def test_extremes_always_sampled(self):
        """With n far above sample_size, a domain bug sitting on a single
        extreme key must still be caught."""
        keys = np.zeros(100_000, dtype=np.int64)
        keys[-1] = -5  # one hostile key in a sea of zeros
        spec = _RawSpec(
            lambda k: np.where(k < 0, 99, 0).astype(np.uint32), 8)
        with pytest.raises(SpecValidationError, match="outside"):
            validate_spec(spec, keys, sample_size=256)

    def test_empty_keys_pass(self):
        validate_spec(RangeBuckets(4), np.empty(0, dtype=np.uint32))


class TestStrictMode:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_good_spec_passes_strict(self, engine):
        keys = _keys()
        res = multisplit(keys, RangeBuckets(8, 0, 1 << 20), engine=engine,
                         strict=True)
        check_multisplit(res, keys, RangeBuckets(8, 0, 1 << 20))

    @pytest.mark.parametrize("engine", ENGINES)
    def test_lying_elementwise_caught(self, engine):
        with pytest.raises(SpecValidationError, match="elementwise"):
            multisplit(_keys(), _LyingElementwise(), engine=engine,
                       strict=True)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_out_of_range_caught(self, engine):
        spec = _RawSpec(lambda k: np.full(k.size, 7, dtype=np.uint32), 4)
        with pytest.raises(SpecValidationError):
            multisplit(_keys(), spec, engine=engine, strict=True)

    def test_engine_entrypoints_take_strict(self):
        keys = _keys()
        sharded_multisplit(keys, RangeBuckets(8, 0, 1 << 20), strict=True)
        stream_multisplit(keys, RangeBuckets(8, 0, 1 << 20), strict=True)
        with pytest.raises(SpecValidationError):
            sharded_multisplit(keys, _LyingElementwise(), strict=True)
        with pytest.raises(SpecValidationError):
            stream_multisplit(keys, _LyingElementwise(), strict=True)

    def test_chunked_source_rejected_under_strict(self):
        chunks = lambda: iter([_keys(256), _keys(256, seed=1)])  # noqa: E731
        with pytest.raises(ValueError, match="strict"):
            multisplit(chunks, RangeBuckets(8, 0, 1 << 20), engine="stream",
                       strict=True)
        with pytest.raises(ValueError, match="strict"):
            stream_multisplit(chunks, RangeBuckets(8, 0, 1 << 20),
                              strict=True)


class TestDegenerateInputs:
    """Degenerate-but-legal inputs keep working on all four engines."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_empty_input(self, engine):
        keys = np.empty(0, dtype=np.uint32)
        res = multisplit(keys, RangeBuckets(8), engine=engine, strict=True)
        check_multisplit(res, keys, RangeBuckets(8))
        assert res.keys.size == 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_m1(self, engine):
        keys = _keys(512)
        spec = RangeBuckets(1, 0, 1 << 20)
        res = multisplit(keys, spec, engine=engine, strict=True)
        check_multisplit(res, keys, spec)
        np.testing.assert_array_equal(res.keys, keys)  # stable ⇒ unchanged

    @pytest.mark.parametrize("engine", ENGINES)
    def test_all_keys_one_bucket_with_empties(self, engine):
        # every key lands in bucket 2 of 8: buckets 0,1,3..7 are empty
        keys = np.full(512, 300, dtype=np.uint32)
        spec = RangeBuckets(8, 0, 1024)
        res = multisplit(keys, spec, engine=engine, strict=True)
        check_multisplit(res, keys, spec)
        starts = np.asarray(res.bucket_starts)
        assert (np.diff(starts) == [0, 0, 512, 0, 0, 0, 0, 0]).all()

    def test_num_buckets_mismatch_rejected(self):
        spec = RangeBuckets(8)
        with pytest.raises(ValueError, match="num_buckets=16 does not match"):
            multisplit(_keys(), spec, 16)
        for engine in ("fast", "sharded", "stream"):
            with pytest.raises(ValueError, match="does not match"):
                multisplit(_keys(), spec, 4, engine=engine)


class TestDeltaBucketsNegativeKeys:
    """Regression: negative keys used to wrap to in-the-billions ids."""

    def test_ids_clamped_at_zero(self):
        spec = DeltaBuckets(1.0, 4)
        keys = np.array([-100.0, -0.5, 0.0, 1.5, 99.0], dtype=np.float64)
        assert spec(keys).tolist() == [0, 0, 0, 1, 3]
        assert int(spec(keys).max()) < 4  # no wrapped giant ids

    def test_eval_into_matches_ids_bit_identically(self):
        spec = DeltaBuckets(2.5, 16)
        rng = np.random.default_rng(1)
        keys = rng.normal(0.0, 30.0, 4096)  # plenty of negatives
        out = np.full(keys.size, 255, dtype=np.uint8)
        spec.eval_into(keys, out, Workspace())
        np.testing.assert_array_equal(out, spec.ids(keys))

    def test_validate_spec_accepts_negative_domain(self):
        keys = np.array([-7.0, -1.0, 0.0, 3.0], dtype=np.float64)
        validate_spec(DeltaBuckets(1.0, 4), keys)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_sssp_style_multisplit(self, engine):
        """Delta-stepping relaxations produce tentative distances below
        the current window; the full pipeline must survive them."""
        rng = np.random.default_rng(2)
        keys = rng.normal(5.0, 10.0, 3000)  # ~30% negative
        values = np.arange(keys.size, dtype=np.uint32)
        spec = DeltaBuckets(2.0, 8)
        res = multisplit(keys, spec, values=values, engine=engine,
                         strict=True)
        check_multisplit(res, keys, spec, values)


class TestPrimeCompositeNegativeKeys:
    """Regression: negative keys used to hit Python negative sieve
    indexing and silently classify as the sieve tail."""

    def test_negative_rejected(self):
        spec = PrimeCompositeBuckets()
        with pytest.raises(ValueError, match="non-negative"):
            spec(np.array([-1, 2, 3], dtype=np.int64))

    def test_non_negative_still_fine(self):
        spec = PrimeCompositeBuckets()
        ids = spec(np.array([0, 1, 2, 3, 4, 97], dtype=np.int64))
        assert int(ids.max()) < spec.num_buckets


class TestCheckMultisplitKvDtypes:
    """Regression: the kv-pairing check used to cast values through
    int64, corrupting uint64 >= 2^63 and truncating floats."""

    def _result(self, keys, spec, values):
        from repro.multisplit.validate import reference_multisplit
        k, v, starts = reference_multisplit(keys, spec, values)
        return MultisplitResult(keys=k, bucket_starts=starts,
                                method="block", num_buckets=spec.num_buckets,
                                timeline=None, values=v)

    def test_uint64_values_above_2_63_roundtrip(self):
        keys = np.array([3, 1, 2, 0], dtype=np.uint32)
        values = np.array([2**63, 2**63 + 1, 2**64 - 1, 5], dtype=np.uint64)
        spec = IdentityBuckets(4)
        res = self._result(keys, spec, values)
        check_multisplit(res, keys, spec, values)  # raised/overflowed before

    def test_float_value_corruption_detected(self):
        """0.5 vs 0.25 both truncate to int64 0 — the old check could
        not see them swapped across keys; the fixed one must."""
        keys = np.array([0, 1], dtype=np.uint32)
        values = np.array([0.5, 0.25], dtype=np.float64)
        spec = IdentityBuckets(2)
        good = self._result(keys, spec, values)
        check_multisplit(good, keys, spec, values)
        bad = MultisplitResult(
            keys=good.keys, bucket_starts=good.bucket_starts,
            method="block", num_buckets=2, timeline=None,
            values=good.values[[1, 0]])  # swap the two sub-int values
        with pytest.raises(MultisplitValidationError, match="pairing"):
            check_multisplit(bad, keys, spec, values, require_stable=False)

    def test_uint64_value_corruption_detected(self):
        keys = np.array([0, 1], dtype=np.uint32)
        values = np.array([2**63, 2**63 + 2**32], dtype=np.uint64)
        spec = IdentityBuckets(2)
        good = self._result(keys, spec, values)
        bad = MultisplitResult(
            keys=good.keys, bucket_starts=good.bucket_starts,
            method="block", num_buckets=2, timeline=None,
            values=good.values[[1, 0]])
        with pytest.raises(MultisplitValidationError, match="pairing"):
            check_multisplit(bad, keys, spec, values, require_stable=False)

    def test_nan_float_values_roundtrip(self):
        keys = np.array([1, 0, 1], dtype=np.uint32)
        values = np.array([np.nan, 2.5, np.nan], dtype=np.float64)
        spec = IdentityBuckets(2)
        res = self._result(keys, spec, values)
        check_multisplit(res, keys, spec, values, require_stable=False)
