"""Tests for bucket specifications."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.multisplit.bucketing import (
    BucketSpec,
    RangeBuckets,
    IdentityBuckets,
    DeltaBuckets,
    PrimeCompositeBuckets,
    SplitterBuckets,
    CustomBuckets,
    as_bucket_spec,
)


class TestRangeBuckets:
    def test_two_buckets_split_domain(self):
        spec = RangeBuckets(2)
        keys = np.array([0, 2**31 - 1, 2**31, 2**32 - 1], dtype=np.uint32)
        assert spec(keys).tolist() == [0, 0, 1, 1]

    def test_m_buckets_boundaries(self):
        m = 8
        spec = RangeBuckets(m)
        edges = [(i * 2**32) // m for i in range(m)]
        keys = np.array(edges, dtype=np.uint32)
        assert spec(keys).tolist() == list(range(m))

    def test_custom_domain(self):
        spec = RangeBuckets(4, lo=100, hi=200)
        keys = np.array([100, 125, 150, 199])
        assert spec(keys).tolist() == [0, 1, 2, 3]

    def test_rejects_out_of_domain(self):
        spec = RangeBuckets(4, lo=100, hi=200)
        with pytest.raises(ValueError):
            spec(np.array([200]))

    def test_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            RangeBuckets(4, lo=10, hi=10)

    @given(st.integers(1, 64), st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_ids_always_in_range(self, m, keys):
        spec = RangeBuckets(m)
        ids = spec(np.array(keys, dtype=np.uint32))
        assert ids.min() >= 0 and ids.max() < m

    @given(st.integers(1, 64))
    @settings(max_examples=30)
    def test_monotone_in_key(self, m):
        spec = RangeBuckets(m)
        keys = np.sort(np.random.default_rng(0).integers(0, 2**32, 1000, dtype=np.uint32))
        ids = spec(keys).astype(np.int64)
        assert (np.diff(ids) >= 0).all()


class TestIdentityBuckets:
    def test_identity(self):
        spec = IdentityBuckets(4)
        keys = np.array([3, 0, 2, 1], dtype=np.uint32)
        assert spec(keys).tolist() == [3, 0, 2, 1]

    def test_rejects_large_keys(self):
        with pytest.raises(ValueError):
            IdentityBuckets(4)(np.array([4], dtype=np.uint32))

    def test_zero_cost(self):
        assert IdentityBuckets(4).instruction_cost == 0


class TestDeltaBuckets:
    def test_basic(self):
        spec = DeltaBuckets(10.0, 4)
        assert spec(np.array([0, 9, 10, 25, 1000])).tolist() == [0, 0, 1, 2, 3]

    def test_clamps_to_last_bucket(self):
        spec = DeltaBuckets(1.0, 3)
        assert spec(np.array([100])).tolist() == [2]

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            DeltaBuckets(0.0, 4)

    def test_float_keys(self):
        spec = DeltaBuckets(0.5, 8)
        assert spec(np.array([0.0, 0.49, 0.5, 1.7])).tolist() == [0, 0, 1, 3]


class TestPrimeComposite:
    def test_figure1_example(self):
        # Figure 1: keys 59 46 31 3 17 6 25 82 -> primes {59,31,3,17} bucket 0
        spec = PrimeCompositeBuckets()
        keys = np.array([59, 46, 31, 3, 17, 6, 25, 82], dtype=np.uint32)
        assert spec(keys).tolist() == [0, 1, 0, 0, 0, 1, 1, 1]

    def test_zero_and_one_composite(self):
        spec = PrimeCompositeBuckets()
        assert spec(np.array([0, 1, 2], dtype=np.uint32)).tolist() == [1, 1, 0]

    def test_empty(self):
        assert PrimeCompositeBuckets()(np.array([], dtype=np.uint32)).size == 0

    def test_domain_guard(self):
        with pytest.raises(ValueError):
            PrimeCompositeBuckets()(np.array([1 << 30], dtype=np.uint32))


class TestCustomBuckets:
    def test_wraps_callable(self):
        spec = CustomBuckets(lambda k: k % 3, 3)
        assert spec(np.arange(6, dtype=np.uint32)).tolist() == [0, 1, 2, 0, 1, 2]

    def test_rejects_out_of_range_fn(self):
        spec = CustomBuckets(lambda k: k, 2)
        with pytest.raises(ValueError):
            spec(np.array([5], dtype=np.uint32))

    def test_rejects_shape_change(self):
        spec = CustomBuckets(lambda k: k[:1], 2)
        with pytest.raises(ValueError):
            spec(np.zeros(4, dtype=np.uint32))


class TestAsBucketSpec:
    def test_passthrough(self):
        spec = RangeBuckets(4)
        assert as_bucket_spec(spec) is spec

    def test_wraps_callable(self):
        spec = as_bucket_spec(lambda k: k % 2, 2)
        assert spec.num_buckets == 2

    def test_callable_needs_m(self):
        with pytest.raises(ValueError):
            as_bucket_spec(lambda k: k % 2)

    def test_rejects_other(self):
        with pytest.raises(TypeError):
            as_bucket_spec(42)

    def test_base_rejects_bad_m(self):
        with pytest.raises(ValueError):
            BucketSpec(0)


class TestEvalInto:
    """eval_into must be bit-identical to ids() on every spec.

    The engines' hot loops use the pooled-scratch path; any divergence
    from ids() would silently break cross-engine parity, so identity is
    pinned here per spec, per narrowed output dtype, with and without
    an arena.
    """

    SPECS = [
        RangeBuckets(32),
        RangeBuckets(7, lo=1000, hi=250_000),
        RangeBuckets(1),
        IdentityBuckets(200),
        DeltaBuckets(3.5, 16),
        DeltaBuckets(0.25, 4),
        PrimeCompositeBuckets(),
        CustomBuckets(lambda k: np.asarray(k) % 5, 5, elementwise=True),
        SplitterBuckets(np.array([100, 5000, 5000, 1 << 19], dtype=np.uint32)),
        SplitterBuckets(np.array([1 << 18], dtype=np.uint32)),
        SplitterBuckets(np.empty(0, dtype=np.uint32)),
    ]

    @staticmethod
    def _keys_for(spec, rng, n=4097):
        if isinstance(spec, IdentityBuckets):
            return rng.integers(0, spec.num_buckets, n, dtype=np.uint32)
        if isinstance(spec, PrimeCompositeBuckets):
            return rng.integers(0, 1 << 16, n, dtype=np.uint32)
        if isinstance(spec, RangeBuckets):
            return rng.integers(spec.lo, spec.hi, n, dtype=np.uint32)
        return rng.integers(0, 1 << 20, n, dtype=np.uint32)

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: repr(s))
    @pytest.mark.parametrize("out_dtype", [np.uint8, np.uint16, np.uint32])
    @pytest.mark.parametrize("with_arena", [False, True])
    def test_matches_ids(self, spec, out_dtype, with_arena):
        if np.iinfo(out_dtype).max < spec.num_buckets - 1:
            pytest.skip("output dtype too narrow for this spec")
        from repro.engine import Workspace

        rng = np.random.default_rng(42)
        keys = self._keys_for(spec, rng)
        arena = Workspace() if with_arena else None
        out = np.full(keys.size, 255, dtype=out_dtype)
        spec.eval_into(keys, out, arena)
        expected = spec.ids(keys).astype(out_dtype)
        np.testing.assert_array_equal(out, expected)

    def test_empty_keys(self):
        from repro.engine import Workspace

        for spec in (RangeBuckets(8), IdentityBuckets(8), DeltaBuckets(2.0, 8)):
            out = np.empty(0, dtype=np.uint8)
            spec.eval_into(np.empty(0, dtype=np.uint32), out, Workspace())

    def test_range_domain_error_matches_ids(self):
        from repro.engine import Workspace

        spec = RangeBuckets(4, lo=10, hi=20)
        bad = np.array([10, 25], dtype=np.uint32)
        out = np.empty(2, dtype=np.uint8)
        with pytest.raises(ValueError, match="outside bucket domain"):
            spec.ids(bad)
        with pytest.raises(ValueError, match="outside bucket domain"):
            spec.eval_into(bad, out, Workspace())
        # below-domain keys wrap mod 2^64, exactly like ids()
        low = np.array([5], dtype=np.uint32)
        with pytest.raises(ValueError, match="outside bucket domain"):
            spec.eval_into(low, np.empty(1, dtype=np.uint8), Workspace())

    def test_identity_domain_error_matches_ids(self):
        spec = IdentityBuckets(4)
        bad = np.array([0, 4], dtype=np.uint32)
        with pytest.raises(ValueError, match="requires keys <"):
            spec.eval_into(bad, np.empty(2, dtype=np.uint8), None)

    def test_arena_scratch_is_pooled(self):
        from repro.engine import Workspace

        spec = RangeBuckets(32)
        arena = Workspace()
        keys = np.arange(1024, dtype=np.uint32)
        out = np.empty(1024, dtype=np.uint8)
        spec.eval_into(keys, out, arena)
        misses = arena.misses
        for _ in range(5):
            spec.eval_into(keys, out, arena)
        assert arena.misses == misses  # steady state: no new allocations
