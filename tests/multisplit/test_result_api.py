"""Tests for MultisplitResult accessors and the public API dispatcher."""

import numpy as np
import pytest

from repro.multisplit import Method, multisplit, multisplit_kv, RangeBuckets
from repro.simt import Device, K40C


@pytest.fixture
def result():
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 2**32, 1024, dtype=np.uint32)
    values = rng.integers(0, 2**32, 1024, dtype=np.uint32)
    return multisplit(keys, RangeBuckets(4), values=values, method="warp")


class TestResult:
    def test_bucket_views(self, result):
        total = sum(result.bucket(i).size for i in range(4))
        assert total == 1024
        for i in range(4):
            assert result.bucket(i).size == result.bucket_sizes()[i]
            assert result.bucket_values(i).size == result.bucket(i).size

    def test_bucket_index_checked(self, result):
        with pytest.raises(IndexError):
            result.bucket(4)
        with pytest.raises(IndexError):
            result.bucket_values(-1)

    def test_bucket_values_requires_kv(self):
        res = multisplit(np.zeros(64, dtype=np.uint32), RangeBuckets(2), method="warp")
        with pytest.raises(ValueError):
            res.bucket_values(0)

    def test_stage_and_total(self, result):
        stages = result.stages()
        assert set(stages) == {"prescan", "scan", "postscan"}
        assert result.simulated_ms == pytest.approx(sum(stages.values()))
        assert result.stage_ms("scan") == pytest.approx(stages["scan"])

    def test_throughput_positive(self, result):
        assert 0 < result.throughput_gkeys() < 100

    def test_repr(self, result):
        r = repr(result)
        assert "warp" in r and "key-value" in r


class TestApiDispatch:
    def test_method_enum_and_string_equivalent(self):
        keys = np.arange(256, dtype=np.uint32)
        a = multisplit(keys, RangeBuckets(2), method=Method.DIRECT)
        b = multisplit(keys, RangeBuckets(2), method="direct")
        assert a.method == b.method == "direct"

    def test_auto_picks_warp_for_small_m(self):
        keys = np.arange(256, dtype=np.uint32)
        assert multisplit(keys, RangeBuckets(4)).method == "warp"

    def test_auto_picks_block_for_medium_m(self):
        keys = np.random.default_rng(0).integers(0, 2**32, 4096, dtype=np.uint32)
        assert multisplit(keys, RangeBuckets(24)).method == "block"

    def test_auto_picks_reduced_bit_for_huge_m(self):
        keys = np.random.default_rng(0).integers(0, 2**32, 4096, dtype=np.uint32)
        assert multisplit(keys, RangeBuckets(1024)).method == "reduced_bit"

    def test_bare_callable_with_num_buckets(self):
        keys = np.arange(128, dtype=np.uint32)
        res = multisplit(keys, lambda k: k % 3, 3, method="warp")
        assert res.num_buckets == 3

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            multisplit(np.zeros(8, dtype=np.uint32), RangeBuckets(2), method="bogus")

    def test_multisplit_kv_wrapper(self):
        keys = np.arange(128, dtype=np.uint32)
        vals = np.arange(128, dtype=np.uint32)[::-1].copy()
        res = multisplit_kv(keys, vals, RangeBuckets(2), method="warp")
        assert res.values is not None

    def test_kwargs_forwarded(self):
        keys = np.random.default_rng(0).integers(0, 2**32, 2048, dtype=np.uint32)
        res = multisplit(keys, RangeBuckets(4), method="block", warps_per_block=4)
        assert res.method == "block"

    def test_timeline_on_supplied_device(self):
        dev = Device(K40C)
        keys = np.arange(64, dtype=np.uint32)
        res = multisplit(keys, RangeBuckets(2), method="direct", device=dev)
        assert res.timeline is dev.timeline
