"""Sampled-splitter bucketing: SplitterBuckets + BucketSpec.from_sample.

Covers the sample-sort front end of the skew-robust bucketing tentpole:
searchsorted semantics, bit-parity of the allocation-free branchless
eval_into against ids(), deterministic seeded sampling, the one-level
recursion on oversized buckets, and engine parity for the composed spec.
"""

import numpy as np
import pytest

from repro.engine import Workspace
from repro.multisplit import (
    BucketSpec,
    SplitterBuckets,
    multisplit,
)
from repro.multisplit.validate import check_multisplit, reference_multisplit
from repro.obs import collecting


class TestSplitterBuckets:
    def test_searchsorted_semantics(self):
        spec = SplitterBuckets(np.array([10, 20, 30], dtype=np.uint32))
        keys = np.array([0, 9, 10, 19, 20, 29, 30, 99], dtype=np.uint32)
        # a key equal to a splitter lands in the bucket to its right
        assert spec(keys).tolist() == [0, 0, 1, 1, 2, 2, 3, 3]
        assert spec.num_buckets == 4
        assert spec.elementwise

    def test_empty_splitters_single_bucket(self):
        spec = SplitterBuckets(np.empty(0, dtype=np.uint32))
        assert spec.num_buckets == 1
        keys = np.arange(100, dtype=np.uint32)
        assert (spec(keys) == 0).all()
        out = np.full(100, 7, dtype=np.uint8)
        spec.eval_into(keys, out, Workspace())
        assert (out == 0).all()

    def test_equal_splitters_make_empty_buckets(self):
        spec = SplitterBuckets(np.array([5, 5, 5], dtype=np.uint32))
        keys = np.array([4, 5, 6], dtype=np.uint32)
        assert spec(keys).tolist() == [0, 3, 3]

    def test_unsorted_splitters_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            SplitterBuckets(np.array([5, 3], dtype=np.uint32))

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            SplitterBuckets(np.zeros((2, 2), dtype=np.uint32))

    def test_num_buckets_cross_check(self):
        SplitterBuckets(np.array([1, 2], dtype=np.uint32), 3)
        with pytest.raises(ValueError, match="num_buckets"):
            SplitterBuckets(np.array([1, 2], dtype=np.uint32), 4)

    @pytest.mark.parametrize("dtype", [np.uint32, np.int32, np.uint64, np.int64])
    @pytest.mark.parametrize("num_splitters", [1, 2, 3, 5, 8, 31, 100])
    def test_eval_into_bit_parity(self, dtype, num_splitters):
        """The branchless arena search must match searchsorted exactly,
        including extreme keys that walk into the power-of-two padding."""
        rng = np.random.default_rng(num_splitters)
        info = np.iinfo(dtype)
        sp = np.sort(rng.integers(info.min, info.max, num_splitters,
                                  dtype=dtype, endpoint=True))
        spec = SplitterBuckets(sp)
        keys = rng.integers(info.min, info.max, 5000, dtype=dtype,
                            endpoint=True)
        # force the edge cases: dtype extremes and exact splitter hits
        keys[:3] = info.max
        keys[3:6] = info.min
        keys[6:6 + num_splitters] = sp
        expected = np.searchsorted(sp, keys, side="right")
        out = np.full(keys.size, 255, dtype=np.uint8 if spec.num_buckets <= 256
                      else np.uint32)
        spec.eval_into(keys, out, Workspace())
        np.testing.assert_array_equal(out, expected)

    def test_eval_into_dtype_mismatch_falls_back(self):
        spec = SplitterBuckets(np.array([100], dtype=np.uint32))
        keys = np.array([50, 150], dtype=np.uint64)  # != splitter dtype
        out = np.empty(2, dtype=np.uint8)
        spec.eval_into(keys, out, Workspace())
        assert out.tolist() == [0, 1]

    def test_float_splitters_work_without_arena_path(self):
        spec = SplitterBuckets(np.array([0.5, 1.5], dtype=np.float64))
        keys = np.array([0.0, 1.0, 2.0], dtype=np.float64)
        assert spec(keys).tolist() == [0, 1, 2]
        out = np.empty(3, dtype=np.uint8)
        spec.eval_into(keys, out, Workspace())
        assert out.tolist() == [0, 1, 2]


class TestFromSample:
    def _skewed(self, n, seed=0):
        rng = np.random.default_rng(seed)
        u = np.maximum(rng.random(n), 1e-9)
        return np.minimum(u**-5 * 1024.0, 2.0**40).astype(np.uint64)

    def test_balances_skewed_keys(self):
        n, m = 1 << 16, 32
        keys = self._skewed(n)
        spec = BucketSpec.from_sample(keys, m)
        counts = np.bincount(spec(keys), minlength=m)
        assert counts.max() / (n / m) <= 2.0

    def test_deterministic(self):
        keys = self._skewed(1 << 14)
        a = BucketSpec.from_sample(keys, 16)
        b = BucketSpec.from_sample(keys, 16)
        np.testing.assert_array_equal(a.splitters, b.splitters)
        c = BucketSpec.from_sample(keys, 16, seed=7)
        assert not np.array_equal(a.splitters, c.splitters)

    def test_m1_and_errors(self):
        keys = np.arange(10, dtype=np.uint32)
        assert BucketSpec.from_sample(keys, 1).num_buckets == 1
        with pytest.raises(ValueError, match="empty"):
            BucketSpec.from_sample(np.empty(0, dtype=np.uint32), 4)
        with pytest.raises(ValueError, match="num_buckets"):
            BucketSpec.from_sample(keys, 0)
        with pytest.raises(ValueError, match="oversample"):
            BucketSpec.from_sample(keys, 2, oversample=0)
        with pytest.raises(ValueError, match="recurse_factor"):
            BucketSpec.from_sample(keys, 2, recurse_factor=0.0)
        with pytest.raises(ValueError, match="1-D"):
            BucketSpec.from_sample(keys.reshape(2, 5), 2)

    def test_recursion_fires_and_improves(self):
        """oversample=1 starves the first pass, forcing the recursion to
        re-split oversized buckets; the resplit counter must record it
        and the final skew must not be worse than the initial one."""
        keys = self._skewed(1 << 14, seed=3)
        m = 16
        with collecting() as reg:
            spec = BucketSpec.from_sample(keys, m, oversample=1)
        recs = {(r["name"], r["labels"].get("stage")): r["value"]
                for r in reg.snapshot() if r["name"].startswith("bucketing.")}
        assert recs[("bucketing.resplits", None)] >= 1
        initial = recs[("bucketing.skew_ratio", "initial")]
        final = recs[("bucketing.skew_ratio", "final")]
        assert final <= initial
        counts = np.bincount(spec(keys), minlength=m)
        assert counts.sum() == keys.size

    def test_no_resplit_when_n_tiny(self):
        # every key identical: no elementwise spec can split them, and
        # the recursion must not loop trying
        keys = np.full(100, 42, dtype=np.uint32)
        with collecting() as reg:
            spec = BucketSpec.from_sample(keys, 8)
        counts = np.bincount(spec(keys), minlength=8)
        assert counts.sum() == 100
        assert counts.max() == 100  # all in one bucket, by necessity

    def test_splitter_dtype_matches_keys(self):
        keys = self._skewed(1 << 12)
        spec = BucketSpec.from_sample(keys, 8)
        assert spec.splitters.dtype == keys.dtype

    @pytest.mark.parametrize("engine", ["emulate", "fast", "sharded"])
    def test_engine_parity_on_composed_spec(self, engine):
        keys32 = (self._skewed(1 << 14, seed=5) >> 8).astype(np.uint32)
        values = np.arange(keys32.size, dtype=np.uint32)
        spec = BucketSpec.from_sample(keys32, 16)
        res = multisplit(keys32, spec, values=values, engine=engine)
        check_multisplit(res, keys32, spec, values)
        ref_keys, ref_vals, ref_starts = reference_multisplit(
            keys32, spec, values)
        np.testing.assert_array_equal(res.keys, ref_keys)
        np.testing.assert_array_equal(res.values, ref_vals)
        np.testing.assert_array_equal(
            np.asarray(res.bucket_starts, dtype=np.int64), ref_starts)
