"""Property-based tests: the multisplit contract under arbitrary inputs."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.multisplit import (
    multisplit,
    RangeBuckets,
    CustomBuckets,
    check_multisplit,
    reference_multisplit,
)

keys_strategy = st.lists(st.integers(0, 2**32 - 1), min_size=0, max_size=600)
stable_methods = st.sampled_from(["direct", "warp", "block", "recursive_split", "reduced_bit"])


@given(keys_strategy, st.integers(1, 32), stable_methods)
@settings(max_examples=60, deadline=None)
def test_stable_multisplit_contract(keys, m, method):
    keys = np.array(keys, dtype=np.uint32)
    spec = RangeBuckets(m)
    res = multisplit(keys, spec, method=method)
    check_multisplit(res, keys, spec)


@given(keys_strategy, st.integers(1, 32), stable_methods, st.integers(0, 2**31))
@settings(max_examples=40, deadline=None)
def test_key_value_pairing_preserved(keys, m, method, vseed):
    keys = np.array(keys, dtype=np.uint32)
    values = np.random.default_rng(vseed).integers(0, 2**32, keys.size, dtype=np.uint32)
    spec = RangeBuckets(m)
    res = multisplit(keys, spec, values=values, method=method)
    check_multisplit(res, keys, spec, values)


@given(keys_strategy, st.integers(33, 300))
@settings(max_examples=30, deadline=None)
def test_block_level_large_m_contract(keys, m):
    keys = np.array(keys, dtype=np.uint32)
    spec = RangeBuckets(m)
    res = multisplit(keys, spec, method="block")
    check_multisplit(res, keys, spec)


@given(keys_strategy, st.integers(1, 64), st.integers(2, 7))
@settings(max_examples=40, deadline=None)
def test_custom_modulo_buckets(keys, seed, m):
    """Non-monotone bucket functions (keys not comparable across buckets)."""
    keys = np.array(keys, dtype=np.uint32)
    spec = CustomBuckets(lambda k: k % m, m)
    method = "warp" if m <= 32 else "block"
    res = multisplit(keys, spec, method=method)
    check_multisplit(res, keys, spec)


@given(keys_strategy, st.integers(1, 16))
@settings(max_examples=40, deadline=None)
def test_randomized_is_valid_partition(keys, m):
    keys = np.array(keys, dtype=np.uint32)
    spec = RangeBuckets(m)
    res = multisplit(keys, spec, method="randomized")
    # not stable, but must still be a contiguous-bucket permutation
    check_multisplit(res, keys, spec)


@given(keys_strategy, st.integers(1, 32))
@settings(max_examples=40, deadline=None)
def test_reference_oracle_self_consistent(keys, m):
    keys = np.array(keys, dtype=np.uint32)
    spec = RangeBuckets(m)
    out, _, starts = reference_multisplit(keys, spec)
    assert out.size == keys.size
    assert starts[-1] == keys.size
    ids = spec(out)
    assert (np.diff(ids.astype(np.int64)) >= 0).all()


@given(keys_strategy, st.integers(1, 32), stable_methods, stable_methods)
@settings(max_examples=30, deadline=None)
def test_all_stable_methods_agree(keys, m, method_a, method_b):
    """Every stable implementation computes the *same* permutation."""
    keys = np.array(keys, dtype=np.uint32)
    spec = RangeBuckets(m)
    ra = multisplit(keys, spec, method=method_a)
    rb = multisplit(keys, spec, method=method_b)
    assert (ra.keys == rb.keys).all()
    assert (ra.bucket_starts == rb.bucket_starts).all()


@given(st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=300),
       st.integers(1, 32))
@settings(max_examples=30, deadline=None)
def test_multisplit_idempotent_on_sorted_output(keys, m):
    """Multisplit of an already-bucketed vector is the identity."""
    keys = np.array(keys, dtype=np.uint32)
    spec = RangeBuckets(m)
    once = multisplit(keys, spec, method="warp")
    twice = multisplit(once.keys, spec, method="warp")
    assert (once.keys == twice.keys).all()
