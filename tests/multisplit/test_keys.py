"""Tests for order-preserving key transforms and float/int multisplit."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.multisplit import DeltaBuckets, CustomBuckets
from repro.multisplit.keys import (
    encode_keys,
    decode_keys,
    encode_float32,
    decode_float32,
    encode_int32,
    decode_int32,
    multisplit_any,
)

finite_floats = st.floats(width=32, allow_nan=False, allow_infinity=True)


class TestFloatCodec:
    @given(st.lists(finite_floats, min_size=2, max_size=200))
    @settings(max_examples=60)
    def test_order_preserving(self, vals):
        arr = np.array(vals, dtype=np.float32)
        enc = encode_float32(arr)
        order_f = np.argsort(arr, kind="stable")
        order_e = np.argsort(enc, kind="stable")
        assert (arr[order_f] == arr[order_e]).all()

    @given(st.lists(finite_floats, min_size=1, max_size=100))
    @settings(max_examples=60)
    def test_roundtrip(self, vals):
        arr = np.array(vals, dtype=np.float32)
        out = decode_float32(encode_float32(arr))
        # bit-exact round trip, including -0.0
        assert (out.view(np.uint32) == arr.view(np.uint32)).all()

    def test_special_values_ordered(self):
        arr = np.array([np.inf, -np.inf, 0.0, -0.0, 1.0, -1.0, 1e-38],
                       dtype=np.float32)
        enc = encode_float32(arr).astype(np.int64)
        assert enc[np.argsort(arr[:2])].tolist() == sorted(enc[:2].tolist())
        assert int(enc[1]) == enc.min()  # -inf smallest
        assert int(enc[0]) == enc.max()  # +inf largest
        assert enc[3] <= enc[2]          # -0.0 <= +0.0

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            encode_float32(np.array([1.0, np.nan], dtype=np.float32))


class TestIntCodec:
    @given(st.lists(st.integers(-2**31, 2**31 - 1), min_size=2, max_size=200))
    @settings(max_examples=60)
    def test_order_preserving_and_roundtrip(self, vals):
        arr = np.array(vals, dtype=np.int32)
        enc = encode_int32(arr)
        assert (np.argsort(arr, kind="stable") == np.argsort(enc, kind="stable")).all()
        assert (decode_int32(enc) == arr).all()


class TestDispatch:
    def test_uint32_passthrough(self):
        arr = np.array([1, 2], dtype=np.uint32)
        assert (encode_keys(arr) == arr).all()
        assert (decode_keys(arr, np.uint32) == arr).all()

    def test_unsupported_dtype(self):
        with pytest.raises(TypeError):
            encode_keys(np.zeros(4, dtype=np.float64))
        with pytest.raises(TypeError):
            decode_keys(np.zeros(4, dtype=np.uint32), np.int16)


class TestMultisplitAny:
    def test_float_delta_buckets(self):
        rng = np.random.default_rng(0)
        keys = (rng.random(5000) * 100).astype(np.float32)
        spec = DeltaBuckets(10.0, 10)
        res = multisplit_any(keys, spec, method="warp")
        assert res.keys.dtype == np.float32
        # contiguous ascending buckets of width 10
        ids = np.clip((res.keys // 10).astype(int), 0, 9)
        assert (np.diff(ids) >= 0).all()
        assert np.sort(res.keys).tolist() == sorted(keys.tolist())

    def test_negative_floats(self):
        rng = np.random.default_rng(1)
        keys = (rng.random(3000) * 20 - 10).astype(np.float32)
        spec = CustomBuckets(lambda k: (k >= 0).astype(np.uint32), 2)
        res = multisplit_any(keys, spec, method="warp")
        b = res.bucket_starts[1]
        assert (res.keys[:b] < 0).all() and (res.keys[b:] >= 0).all()

    def test_int32_keys(self):
        rng = np.random.default_rng(2)
        keys = rng.integers(-1000, 1000, 4000).astype(np.int32)
        spec = CustomBuckets(lambda k: np.where(k < -100, 0,
                                                np.where(k < 100, 1, 2)).astype(np.uint32), 3)
        res = multisplit_any(keys, spec, method="warp")
        assert res.keys.dtype == np.int32
        s = res.bucket_starts
        assert (res.keys[:s[1]] < -100).all()
        assert ((res.keys[s[1]:s[2]] >= -100) & (res.keys[s[1]:s[2]] < 100)).all()
        assert (res.keys[s[2]:] >= 100).all()

    def test_stability_on_floats(self):
        keys = np.array([1.5, 0.5, 1.5, 0.5] * 50, dtype=np.float32)
        values = np.arange(200, dtype=np.uint32)
        spec = CustomBuckets(lambda k: (k > 1.0).astype(np.uint32), 2)
        res = multisplit_any(keys, spec, values=values, method="warp")
        for b in range(2):
            vals = res.values[res.bucket_starts[b]:res.bucket_starts[b + 1]]
            assert (np.diff(vals.astype(np.int64)) > 0).all()

    def test_uint32_direct_path(self):
        keys = np.arange(256, dtype=np.uint32)
        res = multisplit_any(keys, lambda k: k % 2, 2, method="warp")
        assert res.keys.dtype == np.uint32
