"""Tests for Device/Timeline bookkeeping and the cost model."""

import numpy as np
import pytest

from repro.simt import (
    CostModel,
    Device,
    K40C,
    GTX750TI,
    KernelCounters,
    LaunchConfigError,
)


class TestDevice:
    def test_kernel_context_records(self):
        dev = Device(K40C)
        with dev.kernel("prescan:histogram") as k:
            k.gmem.read_streaming(1 << 20, 4)
        assert len(dev.timeline.records) == 1
        rec = dev.timeline.records[0]
        assert rec.name == "prescan:histogram"
        assert rec.stage == "prescan"
        assert rec.total_ms > 0

    def test_exception_discards_record(self):
        dev = Device(K40C)
        with pytest.raises(RuntimeError):
            with dev.kernel("x"):
                raise RuntimeError("boom")
        assert dev.timeline.records == []

    def test_stage_aggregation(self):
        dev = Device(K40C)
        for name in ("prescan:a", "scan:b", "postscan:c", "postscan:d"):
            with dev.kernel(name) as k:
                k.gmem.read_streaming(1024, 4)
        stages = dev.timeline.stages()
        assert list(stages) == ["prescan", "scan", "postscan"]
        assert dev.timeline.stage_ms("postscan") == pytest.approx(
            stages["postscan"]
        )
        assert dev.total_ms == pytest.approx(sum(stages.values()))

    def test_reset(self):
        dev = Device(K40C)
        with dev.kernel("k") as k:
            k.gmem.read_streaming(10, 4)
        dev.reset()
        assert dev.total_ms == 0

    def test_gang_counts_into_kernel(self):
        dev = Device(K40C)
        with dev.kernel("k") as k:
            g = k.gang(10)
            g.ballot(np.zeros((10, 32)))
        assert dev.timeline.records[0].counters.warp_instructions == 10

    def test_invalid_warps_per_block(self):
        dev = Device(K40C)
        with pytest.raises(LaunchConfigError):
            dev.kernel("k", warps_per_block=0)

    def test_warps_for(self):
        assert Device.warps_for(32) == 1
        assert Device.warps_for(33) == 2
        assert Device.warps_for(0) == 1
        assert Device.warps_for(256, per_lane=4) == 2


class TestCostModel:
    def test_more_traffic_costs_more(self):
        m = CostModel(K40C)
        small = KernelCounters()
        small.global_read_bytes_useful = 1 << 20
        small.global_read_sectors = (1 << 20) // 32
        big = small.copy()
        big.global_read_bytes_useful *= 4
        big.global_read_sectors *= 4
        assert m.kernel_time_ms(big) > m.kernel_time_ms(small)

    def test_uncoalesced_costs_more_than_coalesced(self):
        m = CostModel(K40C)
        coal = KernelCounters()
        coal.global_write_bytes_useful = 1 << 22
        coal.global_write_sectors = (1 << 22) // 32
        scat = coal.copy()
        scat.global_write_sectors = 1 << 20  # one 32B sector per 4B element
        assert m.kernel_time_ms(scat) > m.kernel_time_ms(coal)

    def test_streaming_time_matches_bandwidth(self):
        m = CostModel(K40C)
        c = KernelCounters()
        n_bytes = 288_000_000  # 1 ms at peak
        c.global_read_bytes_useful = n_bytes
        c.global_read_sectors = n_bytes // 32
        t = m.kernel_time(c)
        assert t.mem_ms == pytest.approx(1.0 / K40C.streaming_efficiency, rel=0.01)

    def test_library_kernels_run_faster(self):
        c = KernelCounters(is_library=True)
        c.global_read_bytes_useful = 1 << 26
        c.global_read_sectors = (1 << 26) // 32
        c2 = c.copy()
        c2.is_library = False
        m = CostModel(K40C)
        assert m.kernel_time_ms(c) < m.kernel_time_ms(c2)

    def test_launch_overhead_floor(self):
        m = CostModel(K40C)
        t = m.kernel_time_ms(KernelCounters())
        assert t == pytest.approx(K40C.kernel_launch_us * 1e-3)

    def test_occupancy_full_without_shared(self):
        m = CostModel(K40C)
        assert m.occupancy(KernelCounters()) == 1.0

    def test_occupancy_degrades_with_big_shared(self):
        m = CostModel(K40C)
        c = KernelCounters(warps_per_block=8)
        c.shared_bytes_per_block = 24 * 1024  # 2 blocks/SM -> 16 warps
        assert m.occupancy(c) == pytest.approx(16 / 48)
        c.shared_bytes_per_block = 48 * 1024
        assert m.occupancy(c) == pytest.approx(8 / 48)
        c.shared_bytes_per_block = 100 * 1024  # over capacity: 1 block
        assert m.occupancy(c) == pytest.approx(8 / 48)

    def test_occupancy_degrades_with_few_warps_per_block(self):
        """Paper Section 6: NW=2 blocks underfill the SM's warp budget."""
        m = CostModel(K40C)
        assert m.occupancy(KernelCounters(warps_per_block=2)) == pytest.approx(32 / 48)
        assert m.occupancy(KernelCounters(warps_per_block=8)) == 1.0

    def test_maxwell_penalizes_scatter_more(self):
        c = KernelCounters()
        c.global_write_bytes_useful = 1 << 22
        c.global_write_sectors = 1 << 20  # heavily scattered
        base = KernelCounters()
        base.global_write_bytes_useful = 1 << 22
        base.global_write_sectors = (1 << 22) // 32
        # ratio scattered/coalesced is worse on the Maxwell profile
        k40 = CostModel(K40C)
        mx = CostModel(GTX750TI)
        ratio_k40 = k40.kernel_time_ms(c) / k40.kernel_time_ms(base)
        ratio_mx = mx.kernel_time_ms(c) / mx.kernel_time_ms(base)
        assert ratio_mx > ratio_k40


class TestTimelineScaling:
    def test_scaled_counters(self):
        c = KernelCounters()
        c.global_read_bytes_useful = 100
        c.global_read_sectors = 10
        c.warp_instructions = 50
        c.shared_bytes_per_block = 4096
        s = c.scaled(8)
        assert s.global_read_bytes_useful == 800
        assert s.warp_instructions == 400
        assert s.shared_bytes_per_block == 4096  # geometry does not scale

    def test_scaled_timeline_near_linear(self):
        dev = Device(K40C)
        with dev.kernel("k") as k:
            k.gmem.read_streaming(1 << 22, 4)
            k.gmem.write_streaming(1 << 22, 4)
        t1 = dev.total_ms
        t8 = dev.timeline.scaled(8).total_ms
        launch = K40C.kernel_launch_us * 1e-3
        assert t8 - launch == pytest.approx((t1 - launch) * 8, rel=1e-6)

    def test_merged(self):
        dev = Device(K40C)
        with dev.kernel("a") as k:
            k.gmem.read_streaming(1024, 4)
        other = Device(K40C)
        with other.kernel("b") as k:
            k.gmem.read_streaming(1024, 4)
        merged = dev.timeline.merged(other.timeline)
        assert [r.name for r in merged.records] == ["a", "b"]


class TestDeviceSpec:
    def test_replace(self):
        spec = K40C.replace(dram_bandwidth_gbps=100.0)
        assert spec.dram_bandwidth_gbps == 100.0
        assert K40C.dram_bandwidth_gbps == 288.0

    def test_effective_bandwidth(self):
        assert K40C.effective_bandwidth_gbps == pytest.approx(288.0 * K40C.streaming_efficiency)
        assert K40C.lib_bandwidth_gbps > K40C.effective_bandwidth_gbps
