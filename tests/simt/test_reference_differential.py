"""Differential tests: the vectorized gang vs the scalar interpreter.

Every warp intrinsic and both core warp algorithms must agree exactly
between the fast vectorized path used everywhere and the literal
lane-by-lane reference."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simt import WarpGang
from repro.simt.reference import (
    ScalarWarp,
    scalar_warp_histogram,
    scalar_warp_offsets,
)
from repro.multisplit.warp_ops import warp_histogram, warp_offsets

lane_values = st.lists(st.integers(0, 2**32 - 1), min_size=32, max_size=32)
lane_preds = st.lists(st.booleans(), min_size=32, max_size=32)


class TestIntrinsicsDifferential:
    @given(lane_preds)
    @settings(max_examples=50)
    def test_ballot(self, preds):
        gang = WarpGang(1)
        vec = int(gang.ballot(np.array([preds], dtype=np.int64))[0])
        assert vec == ScalarWarp().ballot(preds)

    @given(lane_values, st.integers(0, 31))
    @settings(max_examples=50)
    def test_shfl_scalar_src(self, values, src):
        gang = WarpGang(1)
        vec = gang.shfl(np.array([values], dtype=np.int64), src)[0].tolist()
        assert vec == ScalarWarp().shfl(values, src)

    @given(lane_values, st.lists(st.integers(0, 63), min_size=32, max_size=32))
    @settings(max_examples=50)
    def test_shfl_per_lane_src(self, values, srcs):
        gang = WarpGang(1)
        vec = gang.shfl(np.array([values], dtype=np.int64),
                        np.array([srcs], dtype=np.int64))[0].tolist()
        assert vec == ScalarWarp().shfl(values, srcs)

    @given(lane_values, st.integers(0, 31))
    @settings(max_examples=50)
    def test_shfl_up_down(self, values, delta):
        gang = WarpGang(1)
        v = np.array([values], dtype=np.int64)
        ref = ScalarWarp()
        assert gang.shfl_up(v, delta)[0].tolist() == ref.shfl_up(values, delta)
        assert gang.shfl_down(v, delta)[0].tolist() == ref.shfl_down(values, delta)

    @given(lane_values, st.integers(0, 31))
    @settings(max_examples=50)
    def test_shfl_xor(self, values, mask):
        gang = WarpGang(1)
        v = np.array([values], dtype=np.int64)
        assert gang.shfl_xor(v, mask)[0].tolist() == ScalarWarp().shfl_xor(values, mask)

    @given(st.lists(st.integers(0, 1000), min_size=32, max_size=32))
    @settings(max_examples=50)
    def test_exclusive_scan(self, values):
        gang = WarpGang(1)
        vec = gang.exclusive_scan(np.array([values], dtype=np.int64))[0].tolist()
        assert vec == ScalarWarp().exclusive_scan(values)

    @given(st.lists(st.integers(0, 1000), min_size=32, max_size=32))
    @settings(max_examples=50)
    def test_reduce_sum(self, values):
        gang = WarpGang(1)
        assert int(gang.reduce_sum(np.array([values], dtype=np.int64))[0]) == sum(values)


class TestWarpOpsDifferential:
    @given(st.integers(1, 64), st.integers(0, 2**31), st.booleans())
    @settings(max_examples=80)
    def test_histogram_matches_scalar(self, m, seed, masked):
        rng = np.random.default_rng(seed)
        ids = rng.integers(0, m, size=(1, 32)).astype(np.uint32)
        valid = rng.random((1, 32)) < 0.7 if masked else None
        gang = WarpGang(1)
        vec = warp_histogram(gang, ids, m, valid)[0].tolist()
        ref = scalar_warp_histogram(
            ids[0].tolist(), m, valid[0].tolist() if masked else None)
        assert vec == ref

    @given(st.integers(1, 64), st.integers(0, 2**31), st.booleans())
    @settings(max_examples=80)
    def test_offsets_match_scalar(self, m, seed, masked):
        rng = np.random.default_rng(seed)
        ids = rng.integers(0, m, size=(1, 32)).astype(np.uint32)
        valid = rng.random((1, 32)) < 0.7 if masked else None
        gang = WarpGang(1)
        vec = warp_offsets(gang, ids, m, valid)[0].tolist()
        ref = scalar_warp_offsets(
            ids[0].tolist(), m, valid[0].tolist() if masked else None)
        assert vec == ref


class TestScalarWarpValidation:
    def test_lane_count_checked(self):
        with pytest.raises(ValueError):
            ScalarWarp().ballot([1] * 31)
        with pytest.raises(ValueError):
            scalar_warp_histogram([0] * 31, 2)
        with pytest.raises(ValueError):
            scalar_warp_offsets([0] * 33, 2)

    def test_delta_checked(self):
        with pytest.raises(ValueError):
            ScalarWarp().shfl_up(list(range(32)), 32)
        with pytest.raises(ValueError):
            ScalarWarp().shfl_xor(list(range(32)), -1)

    def test_votes(self):
        w = ScalarWarp()
        assert w.all_sync([1] * 32)
        assert not w.all_sync([1] * 31 + [0])
        assert w.any_sync([0] * 31 + [1])
        assert not w.any_sync([0] * 32)

    def test_m_checked(self):
        with pytest.raises(ValueError):
            scalar_warp_histogram([0] * 32, 0)
