"""Tests for the ASCII timeline rendering."""

import numpy as np

from repro.multisplit import multisplit, RangeBuckets
from repro.simt import Device, K40C
from repro.simt.trace import ascii_gantt, stage_bars, _bar


def make_timeline():
    dev = Device(K40C)
    keys = np.random.default_rng(0).integers(0, 2**32, 1 << 14, dtype=np.uint32)
    multisplit(keys, RangeBuckets(4), method="warp", device=dev)
    return dev.timeline


class TestBar:
    def test_empty_and_full(self):
        assert _bar(0.0, 10) == " " * 10
        assert _bar(1.0, 10) == "█" * 10
        assert _bar(2.0, 10) == "█" * 10  # clamped

    def test_partial_width_fixed(self):
        for f in (0.1, 0.33, 0.77):
            assert len(_bar(f, 20)) == 20


class TestGantt:
    def test_contains_all_kernels(self):
        tl = make_timeline()
        out = ascii_gantt(tl)
        for r in tl.records:
            assert r.name in out
        assert "TOTAL" in out

    def test_longest_kernel_has_full_bar(self):
        tl = make_timeline()
        out = ascii_gantt(tl, width=20)
        longest = max(tl.records, key=lambda r: r.total_ms)
        line = next(ln for ln in out.splitlines()
                    if ln.startswith(longest.name))
        assert "█" * 20 in line

    def test_empty_timeline(self):
        from repro.simt.device import Timeline
        assert "empty" in ascii_gantt(Timeline(K40C))


class TestStageBars:
    def test_shares_sum_to_total(self):
        tl = make_timeline()
        out = stage_bars(tl)
        assert "prescan" in out and "postscan" in out
        shares = [float(ln.split("(")[1].rstrip("%)"))
                  for ln in out.splitlines() if "(" in ln]
        assert abs(sum(shares) - 100.0) < 0.5

    def test_empty(self):
        from repro.simt.device import Timeline
        assert "empty" in stage_bars(Timeline(K40C))
