"""Unit tests for the global/shared memory auditors."""

import numpy as np
import pytest

from repro.simt import (
    K40C,
    KernelCounters,
    GlobalMemoryAuditor,
    SharedMemoryModel,
    MemoryAuditError,
    warp_sector_count,
    warp_issue_runs,
)


def make_gmem():
    c = KernelCounters()
    return GlobalMemoryAuditor(c, K40C), c


def make_smem():
    c = KernelCounters()
    return SharedMemoryModel(c, K40C), c


class TestSectorCount:
    def test_fully_coalesced_4byte(self):
        # 32 lanes x 4B consecutive = 128B = 4 sectors of 32B
        addr = np.arange(32).reshape(1, 32) * 4
        assert warp_sector_count(addr, 32).tolist() == [4]

    def test_single_address(self):
        addr = np.zeros((1, 32), dtype=np.int64)
        assert warp_sector_count(addr, 32).tolist() == [1]

    def test_fully_scattered(self):
        # stride of one sector per lane
        addr = np.arange(32).reshape(1, 32) * 32
        assert warp_sector_count(addr, 32).tolist() == [32]

    def test_order_invariance(self):
        rng = np.random.default_rng(1)
        addr = rng.integers(0, 10_000, size=(8, 32)) * 4
        shuffled = addr.copy()
        for row in shuffled:
            rng.shuffle(row)
        assert (warp_sector_count(addr, 32) == warp_sector_count(shuffled, 32)).all()

    def test_mask_excludes_lanes(self):
        addr = np.arange(32).reshape(1, 32) * 32
        active = np.zeros((1, 32), dtype=bool)
        active[0, :3] = True
        assert warp_sector_count(addr, 32, active).tolist() == [3]

    def test_all_masked(self):
        addr = np.arange(32).reshape(1, 32)
        active = np.zeros((1, 32), dtype=bool)
        assert warp_sector_count(addr, 32, active).tolist() == [0]

    def test_bad_shape_rejected(self):
        with pytest.raises(MemoryAuditError):
            warp_sector_count(np.zeros((1, 16)), 32)


class TestIssueRuns:
    def test_ascending_one_segment(self):
        addr = np.arange(32).reshape(1, 32) * 4  # all within one 128B segment
        assert warp_issue_runs(addr, 128).tolist() == [1]

    def test_alternating_segments(self):
        # lanes alternate between two 128B segments -> 32 runs
        addr = (np.arange(32) % 2).reshape(1, 32) * 128
        assert warp_issue_runs(addr, 128).tolist() == [32]

    def test_sorted_two_segments(self):
        addr = np.sort((np.arange(32) % 2)).reshape(1, 32) * 128
        assert warp_issue_runs(addr, 128).tolist() == [2]

    def test_reordering_reduces_runs_not_sectors(self):
        """The Warp-level-MS effect: same sector set, fewer issue runs."""
        rng = np.random.default_rng(0)
        addr = (rng.integers(0, 4, size=(16, 32)) * 128 + rng.integers(0, 32, size=(16, 32)) * 4)
        ordered = np.sort(addr, axis=1)
        assert (warp_sector_count(addr, 32) == warp_sector_count(ordered, 32)).all()
        assert warp_issue_runs(ordered, 128).sum() <= warp_issue_runs(addr, 128).sum()

    def test_mask_bridges_inactive_lanes(self):
        # active lanes 0 and 2 share a segment; inactive lane 1 between them
        addr = np.zeros((1, 32), dtype=np.int64)
        active = np.zeros((1, 32), dtype=bool)
        active[0, [0, 2]] = True
        assert warp_issue_runs(addr, 128, active).tolist() == [1]

    def test_mask_counts_active_boundaries(self):
        addr = np.zeros((1, 32), dtype=np.int64)
        addr[0, 2] = 1024
        active = np.zeros((1, 32), dtype=bool)
        active[0, [0, 2, 4]] = True  # seg 0, seg 8, seg 0 -> 3 runs
        assert warp_issue_runs(addr, 128, active).tolist() == [3]


class TestGlobalAuditor:
    def test_streaming_read(self):
        g, c = make_gmem()
        g.read_streaming(1024, 4)
        assert c.global_read_bytes_useful == 4096
        assert c.global_read_sectors == 128
        assert c.global_write_sectors == 0

    def test_streaming_write(self):
        g, c = make_gmem()
        g.write_streaming(1000, 8)
        assert c.global_write_bytes_useful == 8000
        assert c.global_write_sectors == 250

    def test_streaming_rounds_up_sectors(self):
        g, c = make_gmem()
        g.read_streaming(1, 4)
        assert c.global_read_sectors == 1

    def test_streaming_rejects_bad_args(self):
        g, _ = make_gmem()
        with pytest.raises(MemoryAuditError):
            g.read_streaming(-1, 4)
        with pytest.raises(MemoryAuditError):
            g.write_streaming(10, 0)

    def test_warp_scatter_counts(self):
        g, c = make_gmem()
        idx = np.arange(32).reshape(1, 32)  # coalesced 4B scatter
        g.write_warp(idx, 4)
        assert c.global_write_bytes_useful == 128
        assert c.global_write_sectors == 4
        assert c.global_issue_runs == 1

    def test_warp_gather_masked(self):
        g, c = make_gmem()
        idx = np.arange(32).reshape(1, 32)
        active = np.zeros((1, 32), dtype=bool)
        active[0, :8] = True
        g.read_warp(idx, 4, active)
        assert c.global_read_bytes_useful == 32
        assert c.global_read_sectors == 1

    def test_atomics(self):
        g, c = make_gmem()
        g.atomic(7)
        assert c.atomic_ops == 7

    def test_mask_shape_mismatch(self):
        g, _ = make_gmem()
        with pytest.raises(MemoryAuditError):
            g.read_warp(np.zeros((2, 32)), 4, np.zeros((1, 32), dtype=bool))


class TestSharedModel:
    def test_conflict_free(self):
        s, c = make_smem()
        addr = np.arange(32).reshape(1, 32)  # one word per bank
        s.access(addr)
        assert c.shared_accesses == 1

    def test_broadcast_worst_case(self):
        s, c = make_smem()
        addr = np.zeros((1, 32), dtype=np.int64)  # all lanes -> bank 0
        s.access(addr)
        assert c.shared_accesses == 32

    def test_two_way_conflict(self):
        s, c = make_smem()
        addr = (np.arange(32) % 16).reshape(1, 32)  # 2 lanes per bank
        s.access(addr)
        assert c.shared_accesses == 2

    def test_stride_two(self):
        s, c = make_smem()
        addr = (np.arange(32) * 2).reshape(1, 32)  # stride-2: 2-way conflicts
        s.access(addr)
        assert c.shared_accesses == 2

    def test_masked_access(self):
        s, c = make_smem()
        addr = np.zeros((1, 32), dtype=np.int64)
        active = np.zeros((1, 32), dtype=bool)
        active[0, :4] = True  # only 4 conflicting lanes
        s.access(addr, active)
        assert c.shared_accesses == 4

    def test_coalesced_helper(self):
        s, c = make_smem()
        s.access_coalesced(10)
        assert c.shared_accesses == 10

    def test_alloc_records_max(self):
        s, c = make_smem()
        s.alloc(1024)
        s.alloc(512)
        assert c.shared_bytes_per_block == 1024
        with pytest.raises(MemoryAuditError):
            s.alloc(-1)
