"""Unit tests for vectorized bit utilities."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.simt import bits


class TestPopcount:
    def test_known_values(self):
        x = np.array([0, 1, 3, 0xFF, 0xFFFFFFFF, 0x80000000], dtype=np.uint32)
        expected = [0, 1, 2, 8, 32, 1]
        assert bits.popcount32(x).tolist() == expected

    def test_popcount64_known(self):
        x = np.array([0, 1, 0xFFFFFFFFFFFFFFFF, 1 << 63], dtype=np.uint64)
        assert bits.popcount64(x).tolist() == [0, 1, 64, 1]

    @given(st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=64))
    def test_matches_python_bitcount(self, values):
        x = np.array(values, dtype=np.uint32)
        expected = [v.bit_count() for v in values]
        assert bits.popcount32(x).tolist() == expected

    @given(st.lists(st.integers(min_value=0, max_value=2**64 - 1), min_size=1, max_size=64))
    def test_popcount64_matches_python(self, values):
        x = np.array(values, dtype=np.uint64)
        expected = [v.bit_count() for v in values]
        assert bits.popcount64(x).tolist() == expected

    def test_swar_fallback_matches(self, monkeypatch):
        monkeypatch.setattr(bits, "_HAS_BITWISE_COUNT", False)
        rng = np.random.default_rng(0)
        x = rng.integers(0, 2**32, size=1000, dtype=np.uint32)
        expected = [int(v).bit_count() for v in x]
        assert bits.popcount32(x).tolist() == expected

    def test_shape_preserved(self):
        x = np.zeros((4, 32), dtype=np.uint32)
        assert bits.popcount32(x).shape == (4, 32)


class TestLaneMasks:
    def test_lanemask_lt(self):
        lanes = np.arange(32)
        masks = bits.lanemask_lt(lanes)
        for i in range(32):
            assert int(masks[i]) == (1 << i) - 1

    def test_lanemask_le(self):
        lanes = np.arange(32)
        masks = bits.lanemask_le(lanes)
        for i in range(32):
            assert int(masks[i]) == (1 << (i + 1)) - 1

    def test_lane31_le_is_full(self):
        assert int(bits.lanemask_le(np.array([31]))[0]) == 0xFFFFFFFF


class TestFfs:
    def test_zero(self):
        assert bits.ffs32(np.array([0], dtype=np.uint32)).tolist() == [0]

    def test_powers_of_two(self):
        x = np.array([1 << i for i in range(32)], dtype=np.uint32)
        assert bits.ffs32(x).tolist() == list(range(1, 33))

    @given(st.integers(min_value=1, max_value=2**32 - 1))
    def test_matches_python(self, v):
        expected = (v & -v).bit_length()
        assert int(bits.ffs32(np.array([v], dtype=np.uint32))[0]) == expected


class TestBitReverse:
    def test_known(self):
        assert int(bits.bit_reverse32(np.array([1], dtype=np.uint32))[0]) == 0x80000000
        assert int(bits.bit_reverse32(np.array([0x80000000], dtype=np.uint32))[0]) == 1

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_involution(self, v):
        x = np.array([v], dtype=np.uint32)
        assert int(bits.bit_reverse32(bits.bit_reverse32(x))[0]) == v


class TestIntHelpers:
    @pytest.mark.parametrize("n,expected", [(1, 1), (2, 2), (3, 4), (31, 32), (33, 64)])
    def test_next_pow2(self, n, expected):
        assert bits.next_pow2(n) == expected

    @pytest.mark.parametrize("n,expected", [(1, 0), (2, 1), (3, 2), (4, 2), (32, 5), (33, 6)])
    def test_ilog2_ceil(self, n, expected):
        assert bits.ilog2_ceil(n) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bits.next_pow2(0)
        with pytest.raises(ValueError):
            bits.ilog2_ceil(0)
