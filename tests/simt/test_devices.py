"""Tests for the what-if device-profile builder and 64-bit key support."""

import numpy as np
import pytest

from repro.multisplit import multisplit, CustomBuckets, RangeBuckets, check_multisplit
from repro.simt import Device, K40C, GTX750TI
from repro.simt.devices import make_device, TITAN_X_LIKE


class TestMakeDevice:
    def test_inherits_calibrated_constants(self):
        d = make_device("x", dram_bandwidth_gbps=500, num_sms=30, clock_ghz=1.0)
        assert d.streaming_efficiency == K40C.streaming_efficiency
        assert d.overlap == K40C.overlap
        assert d.dram_bandwidth_gbps == 500

    def test_throughput_scales_with_sms_and_clock(self):
        small = make_device("s", dram_bandwidth_gbps=100, num_sms=5, clock_ghz=1.0)
        big = make_device("b", dram_bandwidth_gbps=100, num_sms=10, clock_ghz=1.0)
        assert big.warp_throughput_ginst == pytest.approx(
            2 * small.warp_throughput_ginst)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_device("x", dram_bandwidth_gbps=0, num_sms=5, clock_ghz=1.0)
        with pytest.raises(ValueError):
            make_device("x", dram_bandwidth_gbps=100, num_sms=0, clock_ghz=1.0)

    def test_bigger_part_runs_faster(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 2**32, 1 << 18, dtype=np.uint32)
        spec = RangeBuckets(8)
        base = multisplit(keys, spec, method="warp", device=Device(GTX750TI))
        titan = multisplit(keys, spec, method="warp", device=Device(TITAN_X_LIKE))
        assert titan.simulated_ms < base.simulated_ms / 2

    def test_maxwell_base(self):
        d = make_device("m", dram_bandwidth_gbps=200, num_sms=10, clock_ghz=1.0,
                        base=GTX750TI)
        assert d.uncoalesced_sector_factor == GTX750TI.uncoalesced_sector_factor


class Test64BitKeys:
    def spec64(self, m=8):
        return CustomBuckets(
            lambda k: (np.asarray(k, dtype=np.uint64) >> np.uint64(61)).astype(np.uint32), m)

    @pytest.mark.parametrize("method", ["direct", "warp", "block", "sparse_block"])
    def test_contract(self, method):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 2**63, 5000, dtype=np.uint64)
        values = rng.integers(0, 2**32, 5000, dtype=np.uint32)
        spec = self.spec64()
        res = multisplit(keys, spec, values=values, method=method)
        check_multisplit(res, keys, spec, values)
        assert res.keys.dtype == np.uint64

    def test_traffic_priced_at_8_bytes(self):
        rng = np.random.default_rng(2)
        k64 = rng.integers(0, 2**63, 1 << 18, dtype=np.uint64)
        k32 = (k64 >> np.uint64(32)).astype(np.uint32)
        r64 = multisplit(k64, self.spec64(), method="warp")
        r32 = multisplit(k32, CustomBuckets(
            lambda k: (k >> np.uint32(29)).astype(np.uint32), 8), method="warp")
        assert r64.simulated_ms > 1.35 * r32.simulated_ms

    def test_rejects_other_widths(self):
        with pytest.raises(ValueError, match="32- or 64-bit"):
            multisplit(np.zeros(8, dtype=np.uint16), RangeBuckets(2), method="warp")


class Test64BitRemainingMethods:
    def test_reduced_bit_key_only_64(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 2**63, 3000, dtype=np.uint64)
        spec = CustomBuckets(
            lambda k: (np.asarray(k, dtype=np.uint64) >> np.uint64(61)).astype(np.uint32), 8)
        res = multisplit(keys, spec, method="reduced_bit")
        check_multisplit(res, keys, spec)
        assert res.keys.dtype == np.uint64

    def test_reduced_bit_kv_64_rejected(self):
        keys = np.zeros(64, dtype=np.uint64)
        vals = np.zeros(64, dtype=np.uint32)
        with pytest.raises(ValueError, match="32-bit keys"):
            multisplit(keys, CustomBuckets(lambda k: np.zeros(k.size, dtype=np.uint32), 2),
                       values=vals, method="reduced_bit")

    def test_scan_split_64(self):
        rng = np.random.default_rng(4)
        keys = rng.integers(0, 2**63, 2000, dtype=np.uint64)
        spec = CustomBuckets(
            lambda k: (np.asarray(k, dtype=np.uint64) >> np.uint64(62) & np.uint64(1)).astype(np.uint32), 2)
        res = multisplit(keys, spec, method="scan_split")
        check_multisplit(res, keys, spec)

    def test_randomized_64(self):
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 2**63, 2000, dtype=np.uint64)
        spec = CustomBuckets(
            lambda k: (np.asarray(k, dtype=np.uint64) >> np.uint64(61)).astype(np.uint32), 8)
        res = multisplit(keys, spec, method="randomized")
        check_multisplit(res, keys, spec)
