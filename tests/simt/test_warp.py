"""Unit tests for the vectorized warp gang against scalar CUDA semantics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simt import WarpGang, KernelCounters, IntrinsicError


def make_gang(num_warps=3):
    c = KernelCounters()
    return WarpGang(num_warps, c), c


class TestBallot:
    def test_all_true(self):
        g, _ = make_gang(2)
        pred = np.ones((2, 32), dtype=np.int64)
        assert g.ballot(pred).tolist() == [0xFFFFFFFF, 0xFFFFFFFF]

    def test_all_false(self):
        g, _ = make_gang(2)
        assert g.ballot(np.zeros((2, 32))).tolist() == [0, 0]

    def test_single_lane(self):
        g, _ = make_gang(1)
        pred = np.zeros((1, 32))
        pred[0, 7] = 5  # any nonzero counts
        assert int(g.ballot(pred)[0]) == 1 << 7

    @given(st.lists(st.booleans(), min_size=32, max_size=32))
    @settings(max_examples=50)
    def test_matches_reference(self, lane_preds):
        g, _ = make_gang(1)
        pred = np.array([lane_preds], dtype=np.int64)
        expected = sum(1 << i for i, p in enumerate(lane_preds) if p)
        assert int(g.ballot(pred)[0]) == expected

    def test_counts_instructions(self):
        g, c = make_gang(5)
        g.ballot(np.zeros((5, 32)))
        assert c.warp_instructions == 5

    def test_shape_check(self):
        g, _ = make_gang(2)
        with pytest.raises(IntrinsicError):
            g.ballot(np.zeros((2, 16)))


class TestVotes:
    def test_all_any(self):
        g, _ = make_gang(1)
        ones = np.ones((1, 32))
        assert bool(g.all_sync(ones)[0]) and bool(g.any_sync(ones)[0])
        ones[0, 3] = 0
        assert not bool(g.all_sync(ones)[0]) and bool(g.any_sync(ones)[0])
        assert not bool(g.any_sync(np.zeros((1, 32)))[0])


class TestShuffles:
    def test_shfl_scalar_source(self):
        g, _ = make_gang(2)
        v = np.arange(64).reshape(2, 32)
        out = g.shfl(v, 5)
        assert (out[0] == 5).all() and (out[1] == 37).all()

    def test_shfl_per_warp_source(self):
        g, _ = make_gang(2)
        v = np.arange(64).reshape(2, 32)
        out = g.shfl(v, np.array([0, 31]))
        assert (out[0] == 0).all() and (out[1] == 63).all()

    def test_shfl_per_lane_source(self):
        g, _ = make_gang(1)
        v = np.arange(32).reshape(1, 32)
        src = np.full((1, 32), 0)
        src[0, :16] = 31
        out = g.shfl(v, src)
        assert (out[0, :16] == 31).all() and (out[0, 16:] == 0).all()

    def test_shfl_source_wraps_mod_32(self):
        g, _ = make_gang(1)
        v = np.arange(32).reshape(1, 32)
        assert (g.shfl(v, 33) == g.shfl(v, 1)).all()

    def test_shfl_up_keeps_low_lanes(self):
        g, _ = make_gang(1)
        v = np.arange(32).reshape(1, 32)
        out = g.shfl_up(v, 3)
        assert out[0, :3].tolist() == [0, 1, 2]  # own values kept
        assert out[0, 3:].tolist() == list(range(29))

    def test_shfl_down_keeps_high_lanes(self):
        g, _ = make_gang(1)
        v = np.arange(32).reshape(1, 32)
        out = g.shfl_down(v, 4)
        assert out[0, :28].tolist() == list(range(4, 32))
        assert out[0, 28:].tolist() == [28, 29, 30, 31]

    def test_shfl_zero_delta_identity(self):
        g, _ = make_gang(1)
        v = np.arange(32).reshape(1, 32)
        assert (g.shfl_up(v, 0) == v).all()
        assert (g.shfl_down(v, 0) == v).all()

    def test_shfl_xor(self):
        g, _ = make_gang(1)
        v = np.arange(32).reshape(1, 32)
        out = g.shfl_xor(v, 1)
        assert out[0, 0] == 1 and out[0, 1] == 0 and out[0, 30] == 31

    def test_delta_range_checked(self):
        g, _ = make_gang(1)
        v = np.zeros((1, 32))
        for bad in (-1, 32):
            with pytest.raises(IntrinsicError):
                g.shfl_up(v, bad)
            with pytest.raises(IntrinsicError):
                g.shfl_down(v, bad)
            with pytest.raises(IntrinsicError):
                g.shfl_xor(v, bad)

    def test_does_not_mutate_input(self):
        g, _ = make_gang(1)
        v = np.arange(32).reshape(1, 32)
        orig = v.copy()
        g.shfl_up(v, 1)
        g.shfl_down(v, 1)
        g.shfl_xor(v, 1)
        assert (v == orig).all()


class TestPopc:
    def test_popc(self):
        g, _ = make_gang(1)
        v = np.full((1, 32), 0b1011, dtype=np.uint32)
        assert (g.popc(v) == 3).all()


class TestScansAndReductions:
    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=32, max_size=32))
    @settings(max_examples=50)
    def test_exclusive_scan_matches_cumsum(self, values):
        g, _ = make_gang(1)
        v = np.array([values], dtype=np.int64)
        out = g.exclusive_scan(v)
        expected = np.concatenate([[0], np.cumsum(values)[:-1]])
        assert out[0].tolist() == expected.tolist()

    def test_inclusive_scan(self):
        g, _ = make_gang(2)
        v = np.ones((2, 32), dtype=np.int64)
        out = g.inclusive_scan(v)
        assert (out == np.arange(1, 33)).all()

    def test_scan_is_per_warp(self):
        g, _ = make_gang(2)
        v = np.ones((2, 32), dtype=np.int64)
        v[1] *= 10
        out = g.exclusive_scan(v)
        assert out[0, 31] == 31 and out[1, 31] == 310

    @given(st.lists(st.integers(min_value=-50, max_value=50), min_size=32, max_size=32))
    @settings(max_examples=50)
    def test_reduce_sum(self, values):
        g, _ = make_gang(1)
        v = np.array([values], dtype=np.int64)
        assert int(g.reduce_sum(v)[0]) == sum(values)

    def test_reduce_max(self):
        g, _ = make_gang(1)
        v = np.arange(32).reshape(1, 32)
        assert int(g.reduce_max(v)[0]) == 31

    def test_scan_charges_log_rounds(self):
        g, c = make_gang(4)
        g.exclusive_scan(np.ones((4, 32), dtype=np.int64))
        # 5 shuffle rounds + 5 adds, per warp
        assert c.warp_instructions == 10 * 4


class TestConstruction:
    def test_rejects_zero_warps(self):
        with pytest.raises(IntrinsicError):
            WarpGang(0)

    def test_lane_matrix(self):
        g, _ = make_gang(2)
        assert g.lane.shape == (2, 32)
        assert (g.lane[0] == np.arange(32)).all()
