"""Multisplit over floating-point and signed keys (paper Section 6).

The paper notes its methods work "for any other 32-bit data (e.g.,
floating-point numbers)". `repro.multisplit.multisplit_any` handles the
order-preserving bit transforms; this example buckets signed float
measurements (e.g. particle energies) into physically meaningful bins
and shows negative values, -0.0, and infinities land where they should.

Run:  python examples/float_keys.py
"""

import numpy as np

from repro.multisplit import multisplit_any, CustomBuckets


def energy_bins(values):
    """4 bins: sub-zero, [0, 1), [1, 10), 10+."""
    v = np.asarray(values, dtype=np.float64)
    return np.where(v < 0, 0,
                    np.where(v < 1, 1, np.where(v < 10, 2, 3))).astype(np.uint32)


def main():
    rng = np.random.default_rng(3)
    n = 1 << 18
    energies = (rng.standard_normal(n) * 4).astype(np.float32)
    energies[:4] = [np.float32(-0.0), np.float32(0.0), np.inf, -np.inf]
    particle_ids = np.arange(n, dtype=np.uint32)

    spec = CustomBuckets(energy_bins, 4, instruction_cost=6)
    res = multisplit_any(energies, spec, values=particle_ids, method="warp")

    print(f"{n} float32 energies into 4 bins via warp-level multisplit "
          f"({res.simulated_ms:.3f} simulated ms)")
    names = ["negative", "[0, 1)", "[1, 10)", "10+"]
    for b, sl in enumerate(res.bucket_slices()):
        bucket = res.keys[sl]
        print(f"  {names[b]:9s}: {bucket.size:7d} values"
              + (f", range [{bucket.min():.3g}, {bucket.max():.3g}]"
                 if bucket.size else ""))
    # the specials ended up in the right bins
    neg = res.bucket(0)
    assert -np.inf in neg and np.inf in res.bucket(3)
    assert int(res.bucket_counts.sum()) == n
    # stability: particle ids ascend within each bin
    for sl in res.bucket_slices():
        vals = res.values[sl]
        assert (np.diff(vals.astype(np.int64)) > 0).all()
    print("  specials (-0.0, +-inf) and stability verified")


if __name__ == "__main__":
    main()
