"""Delta-stepping SSSP with multisplit bucketing (paper Section 1, footnote 1).

Compares the three frontier-reorganization backends on the paper's four
graph families and reports the whole-application speedups the footnote
measured: multisplit bucketing ~1.3x over Near-Far, ~2.1x over the
radix-sort-based bucketing Davidson et al. shipped.

Run:  python examples/sssp_delta_stepping.py
"""

import numpy as np

from repro.analysis.tables import gmean, render_table
from repro.simt import Device, K40C
from repro.sssp import FAMILIES, BUCKETINGS, delta_stepping, dijkstra, suggest_delta

SCALE = 10  # 2**SCALE vertices per graph
AMORTIZED = K40C.replace(kernel_launch_us=0.0)  # paper-scale graphs amortize launches


def main():
    rows = []
    speedup_nf, speedup_sort = [], []
    for name, make in FAMILIES.items():
        g = make(SCALE, seed=7)
        delta = suggest_delta(g) / 4
        times = {}
        for bucketing in BUCKETINGS:
            dev = Device(AMORTIZED)
            dist, stats = delta_stepping(g, 0, bucketing=bucketing, device=dev,
                                         delta=delta)
            times[bucketing] = stats["simulated_ms"]
            if bucketing == "multisplit":
                # verify against the serial oracle
                assert np.allclose(dist, dijkstra(g, 0), equal_nan=True)
        rows.append([
            name, f"V={g.num_vertices} E={g.num_edges}",
            f"{times['multisplit'] * 1e3:.1f}",
            f"{times['near_far'] * 1e3:.1f}",
            f"{times['sort'] * 1e3:.1f}",
            f"{times['near_far'] / times['multisplit']:.2f}x",
            f"{times['sort'] / times['multisplit']:.2f}x",
        ])
        speedup_nf.append(times["near_far"] / times["multisplit"])
        speedup_sort.append(times["sort"] / times["multisplit"])

    print(render_table(
        ["graph", "size", "multisplit us", "near-far us", "sort us",
         "vs near-far", "vs sort"],
        rows, title="SSSP bucketing backends (simulated, launch-amortized K40c)"))
    print(f"\ngeo-mean speedup of multisplit bucketing: "
          f"{gmean(speedup_nf):.2f}x over Near-Far (paper: 1.3x), "
          f"{gmean(speedup_sort):.2f}x over sort-based (paper: 2.1x)")
    print("distances verified against Dijkstra on every graph")


if __name__ == "__main__":
    main()
