"""Method explorer: how each implementation behaves as buckets grow.

Sweeps every multisplit implementation across bucket counts on both
device profiles and prints the simulated times side by side — a compact
view of the tradeoff space the paper's Figures 3 and 4 chart.

Run:  python examples/method_explorer.py
"""

import numpy as np

from repro import multisplit, RangeBuckets, Device, K40C, GTX750TI
from repro.analysis.tables import render_table

N = 1 << 19
METHODS = ["direct", "warp", "block", "sparse_block", "scan_split",
           "recursive_split", "reduced_bit", "radix_sort", "randomized"]


def sweep(spec, ms):
    rng = np.random.default_rng(1)
    keys = rng.integers(0, 2**32, N, dtype=np.uint32)
    rows = []
    for method in METHODS:
        cells = [method]
        for m in ms:
            try:
                res = multisplit(keys, RangeBuckets(m), method=method,
                                 device=Device(spec))
                cells.append(f"{res.simulated_ms:.3f}")
            except ValueError:
                cells.append("-")  # method does not support this m
        rows.append(cells)
    return rows


def main():
    ms = [2, 4, 8, 16, 32, 64, 256]
    for spec in (K40C, GTX750TI):
        rows = sweep(spec, ms)
        print(render_table(
            ["method"] + [f"m={m}" for m in ms], rows,
            title=f"\nsimulated ms, n={N}, uniform keys — {spec.name}"))
    print("\n'-' marks bucket counts a method does not support "
          "(scan split: m=2 only; warp-level: m<=32).")
    print("AUTO policy: warp-level for m<=8, block-level to m<=128, "
          "then reduced-bit sort.")


if __name__ == "__main__":
    main()
