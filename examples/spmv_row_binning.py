"""SpMV row binning by length (paper Section 1, Ashari et al. [4]).

Sparse matrix-vector multiplication on GPUs assigns different kernels
to rows of different lengths; the preprocessing step "bins rows by
length" — a multisplit where the key is the row id and the bucket is a
log-scale length class. Binning keeps same-class rows contiguous so
each specialized kernel reads a dense range.

Run:  python examples/spmv_row_binning.py
"""

import numpy as np

from repro import multisplit, CustomBuckets, check_multisplit
from repro.sssp import rmat  # reuse the power-law generator as a sparse matrix

#: bucket i holds rows with nnz in [2**i, 2**(i+1)) (bucket 0: empty/1-entry)
NUM_CLASSES = 8


def length_class(nnz_of_row):
    def classify(row_ids):
        nnz = nnz_of_row[row_ids.astype(np.int64)]
        cls = np.zeros(row_ids.size, dtype=np.uint32)
        nz = nnz > 0
        cls[nz] = np.minimum(np.log2(nnz[nz]).astype(np.uint32) + 1, NUM_CLASSES - 1)
        return cls
    return classify


def main():
    # a power-law sparse matrix: RMAT adjacency, rows = vertices
    g = rmat(14, 8, seed=3)
    nnz = g.out_degree()
    rows = np.arange(g.num_vertices, dtype=np.uint32)

    spec = CustomBuckets(length_class(nnz), NUM_CLASSES, instruction_cost=8)
    res = multisplit(rows, spec, method="warp")
    check_multisplit(res, rows, spec)

    print(f"binned {g.num_vertices} rows ({g.num_edges} nnz) into "
          f"{NUM_CLASSES} length classes via {res.method}-level multisplit")
    for i in range(NUM_CLASSES):
        bucket = res.bucket(i)
        if bucket.size == 0:
            continue
        lens = nnz[bucket.astype(np.int64)]
        lo = 0 if i == 0 else 1 << (i - 1)
        print(f"  class {i} (nnz ~[{lo}, {1 << i})): {bucket.size:6d} rows, "
              f"mean nnz {lens.mean():8.1f}")
    print(f"  binning cost: {res.simulated_ms:.3f} simulated ms — amortized "
          f"over every SpMV with this matrix")

    # downstream check: a CSR-gather SpMV over the binned ordering matches
    x = np.random.default_rng(0).random(g.num_vertices)
    y_ref = np.zeros(g.num_vertices)
    for v in range(g.num_vertices):
        s, e = g.row_ptr[v], g.row_ptr[v + 1]
        y_ref[v] = (g.weights[s:e] * x[g.col_idx[s:e]]).sum()
    y_binned = np.zeros(g.num_vertices)
    for v in res.keys.astype(np.int64):  # process rows in binned order
        s, e = g.row_ptr[v], g.row_ptr[v + 1]
        y_binned[v] = (g.weights[s:e] * x[g.col_idx[s:e]]).sum()
    assert np.allclose(y_ref, y_binned)
    print("  SpMV over the binned row order verified against row order")


if __name__ == "__main__":
    main()
