"""Probabilistic top-k selection via 3-bucket multisplit (paper Section 1).

Monroe et al. [22] select the top-k of n elements on the GPU with "a
core multisplit operation of three bins around two pivots": elements
above the upper pivot certainly belong to the top-k, those below the
lower pivot certainly do not, and the middle bin is recursed on. The
pivots come from order statistics of a random sample, so the middle bin
is tiny with high probability.

The implementation lives in :mod:`repro.apps.topk`; this example drives
it and verifies against a full sort.

Run:  python examples/top_k_selection.py
"""

import numpy as np

from repro.apps import top_k
from repro.simt import Device, K40C


def main():
    rng = np.random.default_rng(5)
    n, k = 1 << 20, 1000
    keys = rng.integers(0, 2**32, n, dtype=np.uint32)

    dev = Device(K40C)
    result, stats = top_k(keys, k, device=dev, seed=5)
    expected = np.sort(keys)[-k:][::-1]
    assert (result == expected).all()
    print(f"top-{k} of {n} keys via 3-bucket multisplits around sampled pivots")
    print(f"  passes: {stats['passes']}, largest middle bin: "
          f"{stats['max_middle']} ({stats['max_middle'] / n:.2%} of input "
          "escaped certain classification)")
    print(f"  total simulated K40c time: {dev.total_ms:.3f} ms")
    print(f"  result verified against full sort "
          f"(top 5: {result[:5].tolist()})")


if __name__ == "__main__":
    main()
