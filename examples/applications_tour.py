"""Tour of the paper's cited multisplit applications (Section 1).

Runs every application subsystem in ``repro.apps`` on a small scenario
and reports what the multisplit did for each — a living version of the
paper's motivation paragraph.

Run:  python examples/applications_tour.py
"""

import numpy as np

from repro.apps import (
    HashTable,
    hash_join,
    ShallowKdTree,
    string_sort,
    suffix_array,
    voxelize,
)
from repro.simt import Device, K40C


def hash_table_demo():
    rng = np.random.default_rng(0)
    n = 30000
    keys = rng.choice(np.arange(1, 2**31, dtype=np.uint32), n, replace=False)
    values = rng.integers(0, 2**32, n, dtype=np.uint32)
    dev = Device(K40C)
    ht = HashTable(keys, values, device=dev)
    got, found = ht.get(keys[:5000])
    assert found.all() and (got == values[:5000]).all()
    split_ms = sum(r.total_ms for r in dev.timeline.records
                   if r.stage in ("prescan", "scan", "postscan"))
    print(f"hash table  [Alcantara'09]: {n} pairs -> {ht.num_buckets} buckets "
          f"(load {ht.load_factor:.2f}); multisplit was {split_ms / dev.total_ms:.0%} "
          f"of the {dev.total_ms:.3f} ms build+query")


def hash_join_demo():
    rng = np.random.default_rng(1)
    left = rng.integers(0, 5000, 20000).astype(np.uint32)
    right = rng.integers(0, 5000, 20000).astype(np.uint32)
    dev = Device(K40C)
    li, ri = hash_join(left, right, radix_bits=5, device=dev)
    assert (left[li] == right[ri]).all()
    print(f"hash join   [Diamos'12]  : {left.size}x{right.size} rows -> "
          f"{li.size} matches via 32 low-bit partitions "
          f"({dev.total_ms:.3f} simulated ms)")


def kdtree_demo():
    rng = np.random.default_rng(2)
    pts = rng.random((20000, 3))
    dev = Device(K40C)
    tree = ShallowKdTree(pts, depth=5, device=dev)
    q = rng.random(3)
    pid, dist = tree.nearest(q)
    brute = int(np.argmin(((pts - q) ** 2).sum(axis=1)))
    assert pid == brute
    print(f"k-d tree    [Wu'11]      : {pts.shape[0]} points, "
          f"{tree.num_leaves} leaf cells after 5 multisplit levels; "
          f"NN query verified ({dev.total_ms:.3f} simulated ms)")


def string_sort_demo():
    rng = np.random.default_rng(3)
    words = [bytes(rng.integers(97, 100, rng.integers(4, 14)).astype(np.uint8))
             for _ in range(4000)]
    dev = Device(K40C)
    order, stats = string_sort(words, device=dev)
    assert [words[i] for i in order] == sorted(words)
    print(f"string sort [Deshpande'13]: {len(words)} strings in "
          f"{stats['rounds']} rounds; singleton multisplit eliminated "
          f"{stats['eliminated']} per round")


def suffix_array_demo():
    rng = np.random.default_rng(4)
    text = bytes(rng.integers(97, 101, 6000).astype(np.uint8))
    dev = Device(K40C)
    sa, stats = suffix_array(text, device=dev)
    assert len(sa) == len(text)
    print(f"suffix array[Deo'13]     : {len(text)} bytes in "
          f"{stats['rounds']} doubling rounds ({dev.total_ms:.3f} simulated ms)")


def voxelize_demo():
    rng = np.random.default_rng(5)
    tris = rng.random((300, 3, 3))
    dev = Device(K40C)
    grid, stats = voxelize(tris, resolution=24, device=dev)
    print(f"voxelizer   [Pantaleoni'11]: 300 triangles -> axis batches "
          f"{stats['batches']}, {int(grid.sum())} voxels set "
          f"({dev.total_ms:.3f} simulated ms)")


if __name__ == "__main__":
    hash_table_demo()
    hash_join_demo()
    kdtree_demo()
    string_sort_demo()
    suffix_array_demo()
    voxelize_demo()
