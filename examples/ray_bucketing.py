"""Ray-direction bucketing for incoherent ray tracing (paper Section 1).

One of the paper's motivating applications [Yang et al. 30]: group rays
into 8 direction-based buckets (the sign octant of the direction vector)
so that rays traversing similar space run in the same warps. The bucket
id is computed from packed ray data by a user-supplied function — the
exact use case multisplit's programmable bucket identifier serves.

Run:  python examples/ray_bucketing.py
"""

import numpy as np

from repro import multisplit_kv, CustomBuckets, check_multisplit


def pack_direction(dx, dy, dz):
    """Quantize a direction to 10 bits per axis and pack into a key."""
    def q(v):
        return np.clip(((v + 1.0) * 511.5).astype(np.uint32), 0, 1023)

    return (q(dx) << np.uint32(20)) | (q(dy) << np.uint32(10)) | q(dz)


def octant_of(keys):
    """Bucket = sign octant of the packed direction (2x2x2 = 8 buckets)."""
    dx = (keys >> np.uint32(20)) & np.uint32(1023)
    dy = (keys >> np.uint32(10)) & np.uint32(1023)
    dz = keys & np.uint32(1023)
    return (((dx >= 512).astype(np.uint32) << np.uint32(2))
            | ((dy >= 512).astype(np.uint32) << np.uint32(1))
            | (dz >= 512).astype(np.uint32))


def warp_coherence(octants):
    """Fraction of 32-ray warps whose rays all share one octant."""
    n = octants.size - octants.size % 32
    warps = octants[:n].reshape(-1, 32)
    return float((warps == warps[:, :1]).all(axis=1).mean())


def main():
    rng = np.random.default_rng(11)
    n = 1 << 18
    # incoherent secondary rays: uniform directions on the sphere
    v = rng.normal(size=(3, n))
    v /= np.linalg.norm(v, axis=0)
    keys = pack_direction(*v)
    ray_ids = np.arange(n, dtype=np.uint32)

    spec = CustomBuckets(octant_of, 8, instruction_cost=6)
    res = multisplit_kv(keys, ray_ids, spec, method="warp")
    check_multisplit(res, keys, spec, ray_ids)

    before = warp_coherence(octant_of(keys))
    after = warp_coherence(octant_of(res.keys))
    print(f"{n} incoherent rays -> 8 direction octants "
          f"via {res.method}-level multisplit")
    print(f"  octant sizes: {res.bucket_sizes().tolist()}")
    print(f"  warp direction-coherence: {before:.1%} before, {after:.1%} after")
    print(f"  reorganization cost: {res.simulated_ms:.3f} simulated ms "
          f"({res.throughput_gkeys():.2f} G rays/s)")
    # the permuted ray ids tell the tracer where each original ray went
    assert after > 0.9


if __name__ == "__main__":
    main()
