"""Quickstart: the multisplit primitive in five minutes.

Reproduces the semantics of the paper's Figure 1 (prime/composite and
range buckets, stable ordering) and shows the performance-model output
every run carries.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    multisplit,
    multisplit_kv,
    RangeBuckets,
    PrimeCompositeBuckets,
    check_multisplit,
)


def figure1_demo():
    """The paper's Figure 1: 8 keys, two bucket definitions."""
    keys = np.array([59, 46, 31, 3, 17, 6, 25, 82], dtype=np.uint32)
    print(f"input keys:            {keys.tolist()}")

    # (1) stable multisplit over prime (B0) / composite (B1) buckets
    spec = PrimeCompositeBuckets()
    res = multisplit(keys, spec, method="warp")
    check_multisplit(res, keys, spec)
    print(f"prime/composite:       {res.keys.tolist()}"
          f"   (primes: {res.bucket(0).tolist()})")

    # (2) stable multisplit over three ranges: <=20, 21..48, >48
    spec = RangeBuckets(3, lo=0, hi=96)  # equal thirds of [0, 96)
    res = multisplit(keys, spec, method="warp")
    check_multisplit(res, keys, spec)
    print(f"three range buckets:   {res.keys.tolist()}")
    for i in range(3):
        print(f"  bucket {i}: {res.bucket(i).tolist()}")


def throughput_demo():
    """A paper-scale run: 1M keys into 8 buckets, key-only and key-value."""
    rng = np.random.default_rng(42)
    n = 1 << 20
    keys = rng.integers(0, 2**32, n, dtype=np.uint32)
    values = np.arange(n, dtype=np.uint32)  # e.g. original indices

    res = multisplit(keys, RangeBuckets(8))  # AUTO picks warp-level MS here
    print(f"\n{n} keys, 8 buckets via {res.method}-level multisplit")
    print(f"  bucket sizes: {res.bucket_counts.tolist()}")
    print(f"  simulated K40c time: {res.simulated_ms:.3f} ms "
          f"({res.throughput_gkeys():.2f} G keys/s)")
    print("  stage breakdown: "
          + ", ".join(f"{k}={v:.3f} ms" for k, v in res.stages().items()))

    # production callers that only need the permuted output skip the
    # emulation: engine="fast" returns the bit-identical result
    fast = multisplit(keys, RangeBuckets(8), engine="fast")
    assert np.array_equal(fast.keys, res.keys)
    print("  engine='fast' returns the identical permutation (no timeline)")

    kv = multisplit_kv(keys, values, RangeBuckets(8))
    print(f"  key-value: {kv.simulated_ms:.3f} ms "
          f"({kv.throughput_gkeys():.2f} G pairs/s)")
    # stability: within a bucket, values (original indices) stay ascending
    for i in range(8):
        assert (np.diff(kv.bucket_values(i).astype(np.int64)) > 0).all()
    print("  stability verified: values ascend within every bucket")


def custom_bucket_demo():
    """Any vectorized function can define the buckets."""
    words_as_keys = np.array([3, 141, 59, 26, 535, 89, 79, 323], dtype=np.uint32)
    res = multisplit(words_as_keys, lambda k: (k % 10) % 4, 4, method="warp")
    print(f"\nbuckets by last digit mod 4: {res.keys.tolist()}")


if __name__ == "__main__":
    figure1_demo()
    throughput_demo()
    custom_bucket_demo()
